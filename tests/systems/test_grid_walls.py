"""Tests for the flat grid protocol and crumbling walls (incl. CWlog)."""

import pytest

from repro.analysis import failure_probability_exhaustive, optimal_strategy
from repro.core import ConstructionError
from repro.systems import CrumblingWallQuorumSystem, GridQuorumSystem


class TestGridStructure:
    def test_element_names(self):
        grid = GridQuorumSystem(2, 3)
        assert grid.n == 6
        assert grid.element(1, 2) == 5

    def test_full_lines(self):
        grid = GridQuorumSystem(3, 2)
        lines = list(grid.full_lines())
        assert len(lines) == 3
        assert all(len(line) == 2 for line in lines)

    def test_row_covers(self):
        grid = GridQuorumSystem(3, 2)
        covers = list(grid.row_covers())
        assert len(covers) == 2**3
        assert all(len(c) == 3 for c in covers)

    def test_read_write_quorum_size(self):
        grid = GridQuorumSystem(4, 4)
        # Every minimal rw quorum: full row (4) + one per other row (3).
        assert grid.smallest_quorum_size() == 7
        assert grid.largest_quorum_size() == 7
        grid.verify_intersection()

    def test_covers_alone_are_not_a_quorum_system(self):
        # Concurrent reads are allowed precisely because two covers can
        # be disjoint.
        grid = GridQuorumSystem(2, 2)
        covers = list(grid.row_covers())
        disjoint = [c for c in covers if not (c & covers[0])]
        assert disjoint

    def test_lines_intersect_covers(self):
        grid = GridQuorumSystem(3, 3)
        for line in grid.full_lines():
            for cover in grid.row_covers():
                assert line & cover

    def test_bad_dims(self):
        with pytest.raises(ConstructionError):
            GridQuorumSystem(0, 3)


class TestGridAnalysis:
    @pytest.mark.parametrize("dims", [(2, 2), (3, 3), (2, 4), (4, 2)])
    def test_closed_form_vs_exhaustive(self, dims):
        grid = GridQuorumSystem(*dims)
        for p in (0.1, 0.3, 0.5):
            assert grid.failure_probability_exact(p) == pytest.approx(
                failure_probability_exhaustive(grid, p), abs=1e-12
            )

    def test_read_write_failure_ordering(self):
        grid = GridQuorumSystem(3, 3)
        p = 0.2
        read = grid.read_failure_probability(p)
        write = grid.write_failure_probability(p)
        readwrite = grid.failure_probability_exact(p)
        assert readwrite >= max(read, write)

    def test_availability_degrades_with_size(self):
        # Peleg–Wool: flat-grid failure probability grows with n — the
        # motivation for hierarchical grids.
        values = [
            GridQuorumSystem(k, k).failure_probability_exact(0.3)
            for k in (3, 4, 5, 6)
        ]
        assert values == sorted(values)

    def test_load_matches_lp(self):
        grid = GridQuorumSystem(3, 3)
        assert grid.load_exact() == pytest.approx(5 / 9)
        assert optimal_strategy(grid).induced_load() == pytest.approx(5 / 9, abs=1e-6)


class TestWallStructure:
    def test_cwlog_widths(self):
        assert CrumblingWallQuorumSystem.cwlog(14).widths == (1, 2, 2, 3, 3, 3)
        assert CrumblingWallQuorumSystem.cwlog(29).widths == (1, 2, 2, 3, 3, 3, 3, 4, 4, 4)

    def test_cwlog_quorum_size_range(self):
        # Table 4: CWlog(14) min 3 max 6; CWlog(29) min 4 max 10.
        cw14 = CrumblingWallQuorumSystem.cwlog(14)
        assert (cw14.smallest_quorum_size(), cw14.largest_quorum_size()) == (3, 6)
        cw29 = CrumblingWallQuorumSystem.cwlog(29)
        assert (cw29.smallest_quorum_size(), cw29.largest_quorum_size()) == (4, 10)

    def test_intersection(self):
        CrumblingWallQuorumSystem([1, 2, 3]).verify_intersection()
        CrumblingWallQuorumSystem.cwlog(14).verify_intersection()
        CrumblingWallQuorumSystem.flat_tgrid(3, 3).verify_intersection()

    def test_triangle_and_diamond_builders(self):
        tri = CrumblingWallQuorumSystem.triangle(4)
        assert tri.n == 10
        assert tri.widths == (1, 2, 3, 4)
        dia = CrumblingWallQuorumSystem.diamond(3)
        assert dia.n == 9
        assert dia.widths == (1, 2, 3, 2, 1)

    def test_bad_widths(self):
        with pytest.raises(ConstructionError):
            CrumblingWallQuorumSystem([])
        with pytest.raises(ConstructionError):
            CrumblingWallQuorumSystem([2, 0])


class TestWallAnalysis:
    @pytest.mark.parametrize(
        "widths", [[1, 2, 3], [3, 3, 3], [2, 2, 2, 2], [1, 2, 2, 3, 3, 3]]
    )
    def test_dp_vs_exhaustive(self, widths):
        wall = CrumblingWallQuorumSystem(widths)
        for p in (0.1, 0.3, 0.5):
            assert wall.failure_probability_exact(p) == pytest.approx(
                failure_probability_exhaustive(wall, p), abs=1e-12
            )

    def test_single_row_wall(self):
        wall = CrumblingWallQuorumSystem([3])
        # Only quorum is the full row: failure = 1 - q^3.
        assert wall.failure_probability_exact(0.2) == pytest.approx(1 - 0.8**3)

    def test_flat_tgrid_beats_grid_on_size(self):
        # The [3] optimisation: smaller quorums than the rw grid.
        from repro.systems import GridQuorumSystem

        tgrid = CrumblingWallQuorumSystem.flat_tgrid(4, 4)
        grid = GridQuorumSystem(4, 4)
        assert tgrid.smallest_quorum_size() < grid.smallest_quorum_size()


class TestWallStrategies:
    def test_row_strategy_validation(self):
        wall = CrumblingWallQuorumSystem([1, 2])
        with pytest.raises(ConstructionError):
            wall.row_strategy([1.0])

    def test_tradeoff_strategy_cw14(self):
        # §6 numbers: average quorum size 4, load 55.5%.
        strategy = CrumblingWallQuorumSystem.cwlog(14).tradeoff_strategy()
        assert strategy.average_quorum_size() == pytest.approx(4.0)
        assert strategy.induced_load() == pytest.approx(5 / 9, abs=1e-9)

    def test_tradeoff_strategy_cw29(self):
        # §6 numbers: average quorum size 5.25, load 43.7%.
        strategy = CrumblingWallQuorumSystem.cwlog(29).tradeoff_strategy()
        assert strategy.average_quorum_size() == pytest.approx(5.25)
        assert strategy.induced_load() == pytest.approx(0.4375, abs=1e-9)

    def test_proportional_strategy_loads_less_than_tradeoff(self):
        cw = CrumblingWallQuorumSystem.cwlog(14)
        assert (
            cw.proportional_row_strategy().induced_load()
            < cw.tradeoff_strategy().induced_load()
        )
