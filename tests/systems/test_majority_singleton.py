"""Tests for the voting-based systems and the singleton."""

import math

import pytest

from repro.analysis import failure_probability_exhaustive
from repro.core import ConstructionError, Universe
from repro.systems import (
    MajorityQuorumSystem,
    SingletonQuorumSystem,
    WeightedVotingQuorumSystem,
)


class TestSingleton:
    def test_structure(self):
        system = SingletonQuorumSystem.of_size(5, center=2)
        assert system.minimal_quorums() == (frozenset({2}),)
        assert system.smallest_quorum_size() == 1

    def test_failure_probability_is_p(self):
        system = SingletonQuorumSystem.of_size(3)
        for p in (0.0, 0.2, 0.9):
            assert system.failure_probability_exact(p) == p
            assert failure_probability_exhaustive(system, p) == pytest.approx(p)

    def test_load_is_one(self):
        assert SingletonQuorumSystem.of_size(4).load_exact() == 1.0

    def test_bad_center(self):
        with pytest.raises(ConstructionError):
            SingletonQuorumSystem.of_size(3, center=7)

    def test_best_for_large_p(self):
        # Prop. 3.2: for p > 1/2 the singleton beats the majority.
        singleton = SingletonQuorumSystem.of_size(5)
        majority = MajorityQuorumSystem.of_size(5)
        for p in (0.6, 0.8):
            assert singleton.failure_probability_exact(
                p
            ) < majority.failure_probability_exact(p)


class TestMajority:
    def test_quorum_size(self):
        assert MajorityQuorumSystem.of_size(15).quorum_size == 8
        assert MajorityQuorumSystem.of_size(28).quorum_size == 15

    def test_enumeration_matches_binomial(self):
        system = MajorityQuorumSystem.of_size(7)
        assert system.num_minimal_quorums == math.comb(7, 4)
        system.verify_intersection()

    def test_closed_form_vs_exhaustive(self):
        system = MajorityQuorumSystem.of_size(9)
        for p in (0.1, 0.3, 0.5):
            assert system.failure_probability_exact(p) == pytest.approx(
                failure_probability_exhaustive(system, p), abs=1e-12
            )

    def test_half_is_fixed_point_for_odd(self):
        for n in (5, 15, 29):
            system = MajorityQuorumSystem.of_size(n)
            assert system.failure_probability_exact(0.5) == pytest.approx(0.5)

    def test_load(self):
        assert MajorityQuorumSystem.of_size(15).load_exact() == pytest.approx(8 / 15)

    def test_big_enumeration_guarded(self):
        system = MajorityQuorumSystem.of_size(31)
        with pytest.raises(ConstructionError):
            system.minimal_quorums()
        # Closed forms still work.
        assert system.failure_probability_exact(0.5) == pytest.approx(0.5)
        assert system.load_exact() == pytest.approx(16 / 31)

    def test_availability_improves_with_n_below_half(self):
        values = [
            MajorityQuorumSystem.of_size(n).failure_probability_exact(0.2)
            for n in (5, 9, 15, 21)
        ]
        assert values == sorted(values, reverse=True)


class TestWeightedVoting:
    def test_weighted_dictator(self):
        # One element holds a strict vote majority: it is a dictator.
        system = WeightedVotingQuorumSystem(Universe.of_size(3), [5, 1, 1])
        assert frozenset({0}) in system.minimal_quorums()
        system.verify_intersection()

    def test_equal_votes_is_majority(self):
        weighted = WeightedVotingQuorumSystem(Universe.of_size(5), [1] * 5)
        majority = MajorityQuorumSystem.of_size(5)
        assert set(weighted.minimal_quorums()) == set(majority.minimal_quorums())

    def test_zero_vote_elements_excluded(self):
        system = WeightedVotingQuorumSystem(Universe.of_size(4), [1, 1, 1, 0])
        for quorum in system.minimal_quorums():
            assert 3 not in quorum

    def test_vote_count_mismatch(self):
        with pytest.raises(ConstructionError):
            WeightedVotingQuorumSystem(Universe.of_size(3), [1, 1])

    def test_negative_votes_rejected(self):
        with pytest.raises(ConstructionError):
            WeightedVotingQuorumSystem(Universe.of_size(2), [1, -1])

    def test_all_zero_votes_rejected(self):
        with pytest.raises(ConstructionError):
            WeightedVotingQuorumSystem(Universe.of_size(2), [0, 0])

    def test_weighted_failure_vs_exhaustive(self):
        system = WeightedVotingQuorumSystem(Universe.of_size(5), [3, 2, 2, 1, 1])
        for p in (0.2, 0.5):
            got = failure_probability_exhaustive(system, p)
            assert 0.0 <= got <= 1.0
        system.verify_intersection()
