"""Tests for the hierarchical triangle (the paper's §5 contribution)."""

import numpy as np
import pytest

from repro.analysis import failure_probability_exhaustive, optimal_strategy
from repro.core import ConstructionError
from repro.systems import HierarchicalTriangle
from repro.systems.htriangle import (
    rows_for_size,
    spec_size,
    standard_spec,
    triangle_size,
)


@pytest.fixture(scope="module")
def tri5():
    return HierarchicalTriangle(5)


class TestSpecs:
    def test_triangle_size(self):
        assert triangle_size(5) == 15
        assert triangle_size(7) == 28

    def test_rows_for_size(self):
        assert rows_for_size(15) == 5
        assert rows_for_size(105) == 14
        with pytest.raises(ConstructionError):
            rows_for_size(16)

    def test_spec_size(self):
        assert spec_size(standard_spec(5)) == 15
        assert spec_size(standard_spec(1)) == 1

    def test_bad_rows(self):
        with pytest.raises(ConstructionError):
            standard_spec(0)
        with pytest.raises(ConstructionError):
            standard_spec(3, subgrid="bogus")


class TestConstruction:
    def test_element_names(self, tri5):
        assert tri5.n == 15
        assert (4, 4) in tri5.universe
        assert (4, 5) not in tri5.universe

    def test_figure2_division(self, tri5):
        # t=5: T1 = rows 0-1 (3 elts), G = 3x2 grid (6), T2 = 3-row
        # triangle (6).
        assert tri5._node_size(tri5._root.t1) == 3
        assert tri5._node_size_grid(tri5._root.grid) == 6
        assert tri5._node_size(tri5._root.t2) == 6

    def test_all_quorums_same_size(self, tri5):
        # The paper's headline property (Table 5): constant quorum size t.
        assert tri5.has_uniform_quorum_size()
        assert tri5.smallest_quorum_size() == 5
        assert {len(q) for q in tri5.minimal_quorums()} == {5}

    def test_intersection_property(self, tri5):
        tri5.verify_intersection()
        HierarchicalTriangle(2).verify_intersection()
        HierarchicalTriangle(3).verify_intersection()
        HierarchicalTriangle(4).verify_intersection()
        HierarchicalTriangle(4, subgrid="flat").verify_intersection()

    def test_quorum_counts(self):
        # method counting: T(2)=3, T(3)=10, T(4)=27, T(5)=84.
        for t, count in ((2, 3), (3, 10), (4, 27), (5, 84)):
            assert HierarchicalTriangle(t).num_minimal_quorums == count

    def test_single_element_triangle(self):
        t1 = HierarchicalTriangle(1)
        assert t1.minimal_quorums() == (frozenset({0}),)

    def test_large_enumeration_guarded(self):
        with pytest.raises(ConstructionError):
            HierarchicalTriangle(14).minimal_quorums()
        # Structural metrics still work.
        big = HierarchicalTriangle(14)
        assert big.smallest_quorum_size() == 14
        assert big.load_exact() == pytest.approx(14 / 105)


class TestAvailability:
    @pytest.mark.parametrize("t", (1, 2, 3, 4, 5))
    def test_recursion_vs_exhaustive(self, t):
        system = HierarchicalTriangle(t)
        for p in (0.1, 0.3, 0.5):
            assert system.failure_probability_exact(p) == pytest.approx(
                failure_probability_exhaustive(system, p), abs=1e-12
            )

    def test_self_dual(self, tri5):
        assert tri5.is_self_dual()
        assert tri5.failure_probability_exact(0.5) == pytest.approx(0.5)

    def test_availability_improves_with_levels(self):
        values = [
            HierarchicalTriangle(t).failure_probability_exact(0.1)
            for t in (3, 5, 7, 9)
        ]
        assert values == sorted(values, reverse=True)

    def test_subgrid_organisation_matters_at_t7(self):
        flat = HierarchicalTriangle(7, subgrid="flat")
        halving = HierarchicalTriangle(7, subgrid="halving")
        # The hierarchical sub-grid beats the flat one (and matches the
        # paper's Table 3).
        assert halving.failure_probability_exact(0.1) < flat.failure_probability_exact(0.1)


class TestLoad:
    def test_method_weights_sum_to_one(self, tri5):
        w1, w2, w3 = tri5.method_weights()
        assert w1 + w2 + w3 == pytest.approx(1.0)
        assert min(w1, w2, w3) >= 0.0

    def test_balanced_profile_uniform(self, tri5):
        profile = tri5.balanced_load_profile()
        assert profile.induced_load == pytest.approx(1 / 3)
        assert profile.imbalance == pytest.approx(1.0)
        assert profile.average_quorum_size == pytest.approx(5.0)
        assert np.allclose(profile.element_loads, 1 / 3)

    @pytest.mark.parametrize("t", (2, 3, 4, 6, 7))
    def test_profile_uniform_for_all_sizes(self, t):
        profile = HierarchicalTriangle(t).balanced_load_profile()
        assert profile.imbalance == pytest.approx(1.0, abs=1e-9)
        assert profile.induced_load == pytest.approx(t / triangle_size(t))

    def test_load_exact_matches_lp(self, tri5):
        # The §5 strategy achieves the Prop. 3.3 bound, so the LP cannot
        # do better.
        lp = optimal_strategy(tri5).induced_load()
        assert lp == pytest.approx(tri5.load_exact(), abs=1e-6)

    def test_profile_matches_explicit_uniform_loads(self):
        # For t=3 compare against loads computed from an explicit
        # strategy distribution built by brute force from the profile
        # invariant: sum of loads == t.
        tri = HierarchicalTriangle(3)
        profile = tri.balanced_load_profile()
        assert profile.element_loads.sum() == pytest.approx(3.0)


class TestGrowth:
    def test_grown_t1(self):
        base = HierarchicalTriangle(5, subgrid="flat")
        grown = base.grown("t1")
        assert grown.n == base.n + 3  # 2-row -> 3-row sub-triangle
        grown.verify_intersection()
        for p in (0.1, 0.3):
            assert grown.failure_probability_exact(p) < base.failure_probability_exact(p)

    def test_grown_t2(self):
        base = HierarchicalTriangle(5, subgrid="flat")
        grown = base.grown("t2")
        assert grown.n == base.n + 4  # 3-row -> 4-row sub-triangle
        grown.verify_intersection()
        assert grown.failure_probability_exact(0.2) < base.failure_probability_exact(0.2)

    def test_grown_grid(self):
        base = HierarchicalTriangle(5, subgrid="flat")
        grown = base.grown("grid")
        assert grown.n == base.n + 6  # 3x2 -> 4x3 sub-grid
        grown.verify_intersection()
        assert grown.failure_probability_exact(0.2) < base.failure_probability_exact(0.2)

    def test_grown_unit_grid(self):
        base = HierarchicalTriangle(2, subgrid="flat")  # grid is 1x1
        grown = base.grown("grid")
        assert grown.n == 4  # 1x1 -> 1x2 grid
        grown.verify_intersection()

    def test_unknown_growth_site(self):
        with pytest.raises(ConstructionError):
            HierarchicalTriangle(5, subgrid="flat").grown("nowhere")

    def test_growth_of_hierarchical_grid_rejected(self):
        with pytest.raises(ConstructionError):
            HierarchicalTriangle(7, subgrid="halving").grown("grid")

    def test_from_spec_round_trip(self):
        spec = standard_spec(4, subgrid="flat")
        system = HierarchicalTriangle.from_spec(spec)
        reference = HierarchicalTriangle(4, subgrid="flat")
        assert system.n == reference.n
        for p in (0.1, 0.4):
            assert system.failure_probability_exact(p) == pytest.approx(
                reference.failure_probability_exact(p)
            )
