"""Tests for the Paths (Naor–Wool) and Y (Kuo–Huang) lattice systems."""

import pytest

from repro.analysis import failure_probability_exhaustive
from repro.core import ConstructionError
from repro.systems import PathsQuorumSystem, YQuorumSystem
from repro.systems.paths import diamond_vertices
from repro.systems.yquorum import triangle_vertices


class TestDiamondGeometry:
    def test_vertex_count(self):
        assert len(diamond_vertices(2)) == 13
        assert len(diamond_vertices(3)) == 25
        assert len(diamond_vertices(7)) == 113

    def test_of_size(self):
        assert PathsQuorumSystem.of_size(13).d == 2
        assert PathsQuorumSystem.of_size(25).d == 3
        with pytest.raises(ConstructionError):
            PathsQuorumSystem.of_size(14)

    def test_sides(self):
        system = PathsQuorumSystem(2)
        assert len(system.side("nw")) == 3
        assert system.side("nw") & system.side("ne")  # corners shared
        with pytest.raises(ConstructionError):
            system.side("up")

    def test_bad_params(self):
        with pytest.raises(ConstructionError):
            PathsQuorumSystem(0)
        with pytest.raises(ConstructionError):
            PathsQuorumSystem(2, variant="weird")


class TestPathsQuorums:
    def test_intersection_axis(self):
        PathsQuorumSystem(1).verify_intersection()
        PathsQuorumSystem(2).verify_intersection()

    def test_intersection_mixed(self):
        PathsQuorumSystem(2, variant="mixed").verify_intersection()

    def test_smallest_quorum_is_sqrt_2n(self):
        # c(S) = 2d+1 ~ sqrt(2n): the main diagonal crosses both ways.
        for d in (1, 2):
            system = PathsQuorumSystem(d)
            assert system.smallest_quorum_size() == 2 * d + 1
            assert min(len(q) for q in system.minimal_quorums()) == 2 * d + 1

    def test_enumeration_guarded(self):
        with pytest.raises(ConstructionError):
            PathsQuorumSystem(3).minimal_quorums()

    def test_dp_matches_exhaustive(self):
        system = PathsQuorumSystem(2)
        for p in (0.1, 0.3, 0.5):
            assert system.failure_probability_exact(p) == pytest.approx(
                failure_probability_exhaustive(system, p), abs=1e-12
            )

    def test_failure_decays_with_d(self):
        values = [
            PathsQuorumSystem(d).failure_probability_exact(0.1) for d in (1, 2, 3)
        ]
        assert values == sorted(values, reverse=True)

    def test_not_self_dual_at_half(self):
        # Conjunction of two crossings: F(1/2) > 1/2 (as in the paper's
        # Tables 2-3 for Paths).
        assert PathsQuorumSystem(2).failure_probability_exact(0.5) > 0.5

    def test_mixed_variant_has_no_dp(self):
        system = PathsQuorumSystem(2, variant="mixed")
        assert system.failure_probability_exact(0.1) is None
        # The front-end falls back to a generic engine.
        value = system.failure_probability(0.1)
        assert 0.0 < value < 1.0

    def test_mixed_beats_axis(self):
        # Extra diagonal steps can only add quorums.
        axis = PathsQuorumSystem(2).failure_probability(0.2)
        mixed = PathsQuorumSystem(2, variant="mixed").failure_probability(0.2)
        assert mixed <= axis


class TestYGeometry:
    def test_vertex_count(self):
        assert len(triangle_vertices(5)) == 15
        assert len(triangle_vertices(7)) == 28

    def test_of_size(self):
        assert YQuorumSystem.of_size(15).t == 5
        assert YQuorumSystem.of_size(28).t == 7
        with pytest.raises(ConstructionError):
            YQuorumSystem.of_size(16)

    def test_sides(self):
        system = YQuorumSystem(4)
        assert len(system.side("left")) == 4
        assert len(system.side("bottom")) == 4
        corners = system.side("left") & system.side("right")
        assert corners == {(0, 0)}
        with pytest.raises(ConstructionError):
            system.side("middle")

    def test_neighbours(self):
        system = YQuorumSystem(3)
        assert set(system.neighbours((1, 0))) == {(0, 0), (1, 1), (2, 0), (2, 1)}


class TestYQuorums:
    def test_minimal_quorums_are_ys(self):
        system = YQuorumSystem(4)
        vertices = list(system.universe.names)
        for quorum in system.minimal_quorums():
            sites = {vertices[e] for e in quorum}
            assert system.is_y_set(sites)

    def test_intersection(self):
        YQuorumSystem(3).verify_intersection()
        YQuorumSystem(4).verify_intersection()
        YQuorumSystem(5).verify_intersection()

    def test_self_dual(self):
        assert YQuorumSystem(4).is_self_dual()
        assert YQuorumSystem(5).failure_probability_exact(0.5) == pytest.approx(0.5)

    def test_quorum_size_range_matches_table4(self):
        # Table 4: Y(15) min 5 max 6.
        system = YQuorumSystem(5)
        assert system.smallest_quorum_size() == 5
        assert system.largest_quorum_size() == 6

    def test_dp_matches_exhaustive(self):
        system = YQuorumSystem(4)
        for p in (0.1, 0.3, 0.5):
            assert system.failure_probability_exact(p) == pytest.approx(
                failure_probability_exhaustive(system, p), abs=1e-12
            )

    def test_enumeration_guarded(self):
        with pytest.raises(ConstructionError):
            YQuorumSystem(7).minimal_quorums()

    def test_failure_decays_with_t(self):
        values = [YQuorumSystem(t).failure_probability_exact(0.1) for t in (3, 5, 7)]
        assert values == sorted(values, reverse=True)
