"""Tests for the hierarchical grid (Kumar–Cheung)."""

import pytest

from repro.analysis import failure_probability_exhaustive
from repro.core import ConstructionError
from repro.systems import GridQuorumSystem, HierarchicalGrid
from repro.systems.hgrid import (
    LEAF,
    flat_spec,
    halving_spec,
    pairing_spec,
)


class TestSpecs:
    def test_flat_spec(self):
        assert flat_spec(2, 2) == ((LEAF, LEAF), (LEAF, LEAF))

    def test_flat_spec_validation(self):
        with pytest.raises(ConstructionError):
            flat_spec(0, 2)

    def test_halving_spec_4x4(self):
        spec = halving_spec(4, 4)
        # Top 2x2 of 2x2 leaf blocks (figure 1's 3-level organisation).
        assert len(spec) == 2 and len(spec[0]) == 2
        assert spec[0][0] == flat_spec(2, 2)

    def test_halving_splits_floor_first(self):
        spec = halving_spec(3, 2)
        # 3 rows -> 1 + 2 (floor first).
        assert spec[0][0] == flat_spec(1, 2)
        assert spec[1][0] == flat_spec(2, 2)

    def test_pairing_spec_collapses_singletons(self):
        spec = pairing_spec(3, 3)
        # Bottom-right 1x1 group collapses to a bare leaf block.
        assert len(spec) == 2 and len(spec[1]) == 2

    def test_empty_row_rejected(self):
        with pytest.raises(ConstructionError):
            HierarchicalGrid(((),))


class TestLayout:
    def test_coordinates_cover_grid(self):
        grid = HierarchicalGrid.halving(4, 4)
        coords = {grid.coordinates(e) for e in grid.universe.ids}
        assert coords == {(r, c) for r in range(4) for c in range(4)}

    def test_rowpaths_track_global_rows(self):
        grid = HierarchicalGrid.halving(4, 4)
        # Elements in a higher global row must compare lexicographically
        # smaller (our "above" orientation).
        for a in grid.universe.ids:
            for b in grid.universe.ids:
                ra, rb = grid.coordinates(a)[0], grid.coordinates(b)[0]
                if ra < rb:
                    assert grid.rowpath(a) < grid.rowpath(b)

    def test_names_are_coordinates(self):
        grid = HierarchicalGrid.halving(3, 3)
        assert grid.universe.id_of((0, 0)) in grid.universe.ids


class TestQuorumFamilies:
    def test_flat_degenerates_to_grid_protocol(self):
        hgrid = HierarchicalGrid.flat(3, 3)
        grid = GridQuorumSystem(3, 3)
        assert set(hgrid.minimal_quorums()) == set(grid.minimal_quorums())

    def test_full_line_count_4x4(self):
        # 2 top rows x (2 x 2) block-line choices = 8 hierarchical lines.
        assert len(HierarchicalGrid.halving(4, 4).full_lines()) == 8

    def test_row_cover_count_4x4(self):
        # Per top row: 2 blocks x 4 covers = 8; two rows -> 64.
        assert len(HierarchicalGrid.halving(4, 4).row_covers()) == 64

    def test_lines_are_not_all_global_rows(self):
        grid = HierarchicalGrid.halving(4, 4)
        rows = {
            frozenset(
                e for e in grid.universe.ids if grid.coordinates(e)[0] == r
            )
            for r in range(4)
        }
        lines = set(grid.full_lines())
        assert rows <= lines  # every global row is a hierarchical line
        assert lines - rows  # ... but there are bent lines too

    def test_every_cover_hits_every_line(self):
        grid = HierarchicalGrid.halving(4, 4)
        for cover in grid.row_covers():
            for line in grid.full_lines():
                assert cover & line

    def test_intersection_property(self):
        HierarchicalGrid.halving(3, 3).verify_intersection()
        HierarchicalGrid.halving(4, 4).verify_intersection()


class TestAvailability:
    @pytest.mark.parametrize("dims", [(2, 2), (3, 3), (4, 4), (2, 4)])
    def test_recursion_vs_exhaustive(self, dims):
        grid = HierarchicalGrid.halving(*dims)
        for p in (0.1, 0.3, 0.5):
            assert grid.failure_probability_exact(p) == pytest.approx(
                failure_probability_exhaustive(grid, p), abs=1e-12
            )

    def test_pairing_recursion_vs_exhaustive(self):
        grid = HierarchicalGrid.pairing(4, 4)
        assert grid.failure_probability_exact(0.2) == pytest.approx(
            failure_probability_exhaustive(grid, 0.2), abs=1e-12
        )

    def test_joint_pmf_sums_to_one(self):
        pmf = HierarchicalGrid.halving(4, 4).joint_cover_line_pmf(0.3)
        assert sum(pmf.values()) == pytest.approx(1.0)

    def test_read_write_failure_dominates(self):
        grid = HierarchicalGrid.halving(4, 4)
        p = 0.25
        assert grid.failure_probability_exact(p) >= grid.read_failure_probability(p)
        assert grid.failure_probability_exact(p) >= grid.write_failure_probability(p)

    def test_hierarchy_beats_flat_grid(self):
        # The point of [9]: the hierarchical grid has asymptotically good
        # availability while the flat grid degrades.
        hier = HierarchicalGrid.halving(4, 4)
        flat = HierarchicalGrid.flat(4, 4)
        assert hier.failure_probability_exact(0.1) < flat.failure_probability_exact(0.1)

    def test_quorum_size_constant(self):
        grid = HierarchicalGrid.halving(4, 4)
        # ~ 2*sqrt(n) - 1 = 7 for n = 16.
        assert grid.smallest_quorum_size() == 7
        assert grid.largest_quorum_size() == 7
