"""Tests for the finite-projective-plane (Maekawa) system."""

import pytest

from repro.analysis import optimal_strategy
from repro.core import ConstructionError
from repro.systems import FPPQuorumSystem
from repro.systems.fpp import projective_plane


class TestPlaneConstruction:
    @pytest.mark.parametrize("q", (2, 3, 5))
    def test_counts(self, q):
        points, lines = projective_plane(q)
        n = q * q + q + 1
        assert len(points) == n
        assert len(lines) == n
        assert all(len(line) == q + 1 for line in lines)

    @pytest.mark.parametrize("q", (2, 3))
    def test_two_lines_meet_in_one_point(self, q):
        _, lines = projective_plane(q)
        for i, first in enumerate(lines):
            for second in lines[i + 1 :]:
                assert len(set(first) & set(second)) == 1

    @pytest.mark.parametrize("q", (2, 3))
    def test_every_point_on_q_plus_1_lines(self, q):
        points, lines = projective_plane(q)
        for index in range(len(points)):
            assert sum(index in line for line in lines) == q + 1

    def test_non_prime_rejected(self):
        with pytest.raises(ConstructionError):
            projective_plane(4)
        with pytest.raises(ConstructionError):
            projective_plane(1)


class TestFPPSystem:
    def test_fano_plane(self):
        system = FPPQuorumSystem(2)
        assert system.n == 7
        assert system.num_minimal_quorums == 7
        assert system.smallest_quorum_size() == 3
        system.verify_intersection()

    def test_of_size(self):
        assert FPPQuorumSystem.of_size(13).q == 3
        with pytest.raises(ConstructionError):
            FPPQuorumSystem.of_size(8)

    def test_optimal_load(self):
        # The paper's §7 note: FPP has the optimal 1/sqrt(n)-ish load.
        system = FPPQuorumSystem(2)
        assert system.load_exact() == pytest.approx(3 / 7)
        assert optimal_strategy(system).induced_load() == pytest.approx(3 / 7, abs=1e-6)

    def test_load_below_htriang(self):
        # FPP load (q+1)/n beats h-triang's sqrt(2)/sqrt(n) at equal n=13 ~ 15.
        from repro.systems import HierarchicalTriangle

        fpp = FPPQuorumSystem(3)  # n = 13
        triangle = HierarchicalTriangle(5)  # n = 15
        assert fpp.load_exact() < triangle.load_exact()

    def test_self_dual(self):
        # Projective planes are self-dual structures.
        assert FPPQuorumSystem(2).is_self_dual()
