"""Tests for HQS (Kumar) and the Agrawal–El Abbadi tree system."""

import pytest

from repro.analysis import failure_probability_exhaustive, optimal_strategy
from repro.core import ConstructionError
from repro.systems import HQSQuorumSystem, TreeQuorumSystem
from repro.systems.hqs import balanced_spec


class TestHQSStructure:
    def test_leaf_count(self):
        assert HQSQuorumSystem.balanced([3, 5]).n == 15
        assert HQSQuorumSystem.balanced([3, 3, 3]).n == 27

    def test_quorum_size_formula(self):
        # Paper Table 4: HQS(15) quorums of 6, HQS(27) quorums of 8.
        assert HQSQuorumSystem.balanced([5, 3]).quorum_size_formula() == 6
        assert HQSQuorumSystem.balanced([3, 3, 3]).quorum_size_formula() == 8

    def test_all_quorums_have_formula_size(self):
        system = HQSQuorumSystem.balanced([3, 3])
        assert system.has_uniform_quorum_size()
        assert system.smallest_quorum_size() == 4

    def test_intersection(self):
        HQSQuorumSystem.balanced([3, 3]).verify_intersection()
        HQSQuorumSystem.balanced([5, 3]).verify_intersection()

    def test_irregular_tree(self):
        # Root with three children: leaf, 3-subtree, 5-subtree.
        spec = ["leaf", balanced_spec([3]), balanced_spec([5])]
        system = HQSQuorumSystem(spec)
        assert system.n == 9
        system.verify_intersection()

    def test_bad_branching(self):
        with pytest.raises(ConstructionError):
            HQSQuorumSystem.balanced([0, 3])


class TestHQSAvailability:
    def test_recursion_matches_exhaustive(self):
        for branching in ([3, 3], [5, 3], [3, 5]):
            system = HQSQuorumSystem.balanced(branching)
            for p in (0.1, 0.3, 0.5):
                assert system.failure_probability_exact(p) == pytest.approx(
                    failure_probability_exhaustive(system, p), abs=1e-12
                )

    def test_half_fixed_point(self):
        for branching in ([3, 3], [5, 3], [3, 3, 3]):
            system = HQSQuorumSystem.balanced(branching)
            assert system.failure_probability_exact(0.5) == pytest.approx(0.5)

    def test_more_levels_improve_availability(self):
        # 3-of-9 flat majority beats... actually the HQS trades
        # availability for quorum size; deeper trees are *worse* than
        # majority but still improve with size.
        small = HQSQuorumSystem.balanced([3, 3])
        large = HQSQuorumSystem.balanced([3, 3, 3])
        assert large.failure_probability_exact(0.1) < small.failure_probability_exact(0.1)


class TestHQSLoad:
    def test_balanced_load(self):
        system = HQSQuorumSystem.balanced([3, 3])
        assert system.load_exact() == pytest.approx(4 / 9)
        lp = optimal_strategy(system).induced_load()
        assert lp == pytest.approx(4 / 9, abs=1e-6)

    def test_paper_load_values(self):
        # Table 4: HQS(15) load 40%, HQS(27) load 29.6%.
        assert HQSQuorumSystem.balanced([5, 3]).load_exact() == pytest.approx(0.40)
        assert HQSQuorumSystem.balanced([3, 3, 3]).load_exact() == pytest.approx(
            8 / 27, abs=1e-3
        )

    def test_unbalanced_returns_none(self):
        spec = ["leaf", balanced_spec([3]), balanced_spec([5])]
        assert HQSQuorumSystem(spec).load_exact() is None


class TestTree:
    def test_node_count(self):
        assert TreeQuorumSystem(0).n == 1
        assert TreeQuorumSystem(2).n == 7
        assert TreeQuorumSystem(2, arity=3).n == 13

    def test_children(self):
        tree = TreeQuorumSystem(2)
        assert tree.children(0) == [1, 2]
        assert tree.children(3) == []

    def test_quorums_include_root_paths(self):
        tree = TreeQuorumSystem(1)
        quorums = set(tree.minimal_quorums())
        # {root, left}, {root, right}, {left, right}.
        assert quorums == {
            frozenset({0, 1}),
            frozenset({0, 2}),
            frozenset({1, 2}),
        }

    def test_intersection(self):
        TreeQuorumSystem(2).verify_intersection()
        TreeQuorumSystem(1, arity=3).verify_intersection()

    def test_recursion_matches_exhaustive(self):
        tree = TreeQuorumSystem(2)
        for p in (0.1, 0.3, 0.5):
            assert tree.failure_probability_exact(p) == pytest.approx(
                failure_probability_exhaustive(tree, p), abs=1e-12
            )

    def test_variable_quorum_sizes(self):
        # The related-work point: tree quorums have different sizes
        # (log n best case, larger when nodes fail).
        tree = TreeQuorumSystem(2)
        assert tree.smallest_quorum_size() == 3  # root-to-leaf path
        assert tree.largest_quorum_size() == 4  # all leaves
        assert not tree.has_uniform_quorum_size()

    def test_bad_parameters(self):
        with pytest.raises(ConstructionError):
            TreeQuorumSystem(-1)
        with pytest.raises(ConstructionError):
            TreeQuorumSystem(2, arity=1)
