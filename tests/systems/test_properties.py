"""Property-based tests (hypothesis) over all constructions.

Invariants checked for randomly drawn construction parameters:

* the intersection property (Definition 3.1);
* failure probability bounds, monotonicity in p and engine agreement;
* Prop. 3.3 load lower bounds;
* duality involution on small systems.
"""

import math

import pytest
from hypothesis import given, settings, strategies as st

from repro.analysis import (
    MAX_EXHAUSTIVE_N,
    failure_probability_exhaustive,
    failure_probability_shannon,
    load_lower_bound,
    optimal_strategy,
)
from repro.core import QuorumSystem
from repro.systems import (
    CrumblingWallQuorumSystem,
    GridQuorumSystem,
    HQSQuorumSystem,
    HierarchicalGrid,
    HierarchicalTGrid,
    HierarchicalTriangle,
    MajorityQuorumSystem,
    TreeQuorumSystem,
    YQuorumSystem,
)

# Small-parameter generators per construction (kept small so that the
# exhaustive reference engine stays fast).
CONSTRUCTIONS = {
    "majority": st.integers(1, 9).map(MajorityQuorumSystem.of_size),
    "grid": st.tuples(st.integers(1, 3), st.integers(1, 3)).map(
        lambda rc: GridQuorumSystem(*rc)
    ),
    "wall": st.lists(st.integers(1, 3), min_size=1, max_size=4).map(
        CrumblingWallQuorumSystem
    ),
    "hgrid": st.tuples(st.integers(2, 4), st.integers(2, 4)).map(
        lambda rc: HierarchicalGrid.halving(*rc)
    ),
    "htgrid": st.tuples(st.integers(2, 4), st.integers(2, 4)).map(
        lambda rc: HierarchicalTGrid.halving(*rc)
    ),
    "htriangle": st.integers(1, 5).map(HierarchicalTriangle),
    "hqs": st.lists(st.sampled_from([3, 5]), min_size=1, max_size=2).map(
        HQSQuorumSystem.balanced
    ),
    "tree": st.integers(0, 2).map(TreeQuorumSystem),
    "y": st.integers(1, 5).map(YQuorumSystem),
}

any_system = st.one_of(*CONSTRUCTIONS.values())

# The exhaustive reference engine enumerates 2^n states and refuses larger
# universes (its cap is the exported constant MAX_EXHAUSTIVE_N, not a magic
# number here); some generators above can exceed it (e.g. HQS [5, 5] has
# n = 25), so tests using that engine draw from the constrained strategy.
exhaustive_system = any_system.filter(lambda s: s.n <= MAX_EXHAUSTIVE_N)


def test_exhaustive_cap_is_an_exported_constant():
    from repro.analysis import exhaustive

    assert MAX_EXHAUSTIVE_N is exhaustive.MAX_EXHAUSTIVE_N
    assert isinstance(MAX_EXHAUSTIVE_N, int) and MAX_EXHAUSTIVE_N >= 20


@settings(max_examples=25, deadline=None)
@given(system=any_system)
def test_intersection_property(system: QuorumSystem):
    system.verify_intersection()


@settings(max_examples=25, deadline=None)
@given(system=any_system)
def test_minimal_quorums_are_antichain(system: QuorumSystem):
    quorums = system.minimal_quorums()
    for first in quorums:
        for second in quorums:
            if first != second:
                assert not first < second


@settings(max_examples=20, deadline=None)
@given(system=exhaustive_system, p=st.floats(0.05, 0.95))
def test_structural_matches_exhaustive(system: QuorumSystem, p: float):
    structural = system.failure_probability_exact(p)
    if structural is None:
        structural = failure_probability_shannon(system, p)
    assert structural == pytest.approx(
        failure_probability_exhaustive(system, p), abs=1e-9
    )


@settings(max_examples=15, deadline=None)
@given(system=any_system)
def test_failure_monotone_in_p(system: QuorumSystem):
    probe = [i / 10 for i in range(11)]
    values = [system.failure_probability(p) for p in probe]
    for before, after in zip(values, values[1:]):
        assert before <= after + 1e-12
    assert values[0] == pytest.approx(0.0, abs=1e-12)
    assert values[-1] == pytest.approx(1.0, abs=1e-12)


@settings(max_examples=15, deadline=None)
@given(system=any_system)
def test_load_respects_lower_bounds(system: QuorumSystem):
    load = optimal_strategy(system).induced_load()
    assert load >= load_lower_bound(system) - 1e-6
    assert load <= 1.0 + 1e-9
    assert load >= 1 / math.sqrt(system.n) - 1e-6


@settings(max_examples=10, deadline=None)
@given(system=st.one_of(CONSTRUCTIONS["majority"], CONSTRUCTIONS["htriangle"],
                        CONSTRUCTIONS["y"], CONSTRUCTIONS["wall"]))
def test_dual_is_involution(system: QuorumSystem):
    if system.n > 12:
        return
    double_dual = system.dual().dual()
    assert set(double_dual.minimal_quorums()) == set(system.minimal_quorums())


@settings(max_examples=15, deadline=None)
@given(system=any_system, p=st.floats(0.1, 0.9))
def test_transversal_complement_identity(system: QuorumSystem, p: float):
    # F_p(S) equals the probability that the failed set hits every quorum
    # (Prop. 3.1): check via the dual on small systems.
    if system.n > 12:
        return
    dual = system.dual()
    # Failed set contains a minimal transversal <=> hits every quorum.
    # Pr[failed superset of some dual quorum] = availability of the dual
    # under survival probability p.
    dual_availability = 1.0 - failure_probability_exhaustive(dual, 1.0 - p)
    assert system.failure_probability(p) == pytest.approx(dual_availability, abs=1e-9)


@settings(max_examples=30, deadline=None)
@given(
    quorums=st.lists(
        st.frozensets(st.integers(0, 7), min_size=1, max_size=4),
        min_size=1,
        max_size=12,
    )
)
def test_reduce_to_coterie_matches_naive(quorums):
    from repro.core import reduce_to_coterie

    reduced = reduce_to_coterie(quorums)
    # Naive reference: keep sets with no strict subset in the family.
    unique = set(quorums)
    expected = {
        q for q in unique if not any(other < q for other in unique)
    }
    assert set(reduced) == expected
    # Anti-chain property.
    for first in reduced:
        for second in reduced:
            if first != second:
                assert not (first <= second)


@settings(max_examples=10, deadline=None)
@given(dims=st.tuples(st.integers(2, 4), st.integers(2, 4)))
def test_htgrid_structural_sizes_match_enumeration(dims):
    from repro.systems import HierarchicalTGrid

    system = HierarchicalTGrid.halving(*dims)
    sizes = [len(q) for q in system.minimal_quorums()]
    assert system.smallest_quorum_size() == min(sizes)
    assert system.largest_quorum_size() == max(sizes)


@settings(max_examples=10, deadline=None)
@given(widths=st.lists(st.integers(1, 3), min_size=1, max_size=4))
def test_wall_structural_sizes_match_enumeration(widths):
    from repro.systems import CrumblingWallQuorumSystem

    system = CrumblingWallQuorumSystem(widths)
    sizes = [len(q) for q in system.minimal_quorums()]
    assert system.smallest_quorum_size() == min(sizes)
    assert system.largest_quorum_size() == max(sizes)
    assert system.num_quorums_formula() == len(sizes)


@settings(max_examples=15, deadline=None)
@given(system=any_system, seed=st.integers(0, 10_000))
def test_heterogeneous_matches_generic(system: QuorumSystem, seed: int):
    # Structured per-element recursions == generic engines, for random
    # survival vectors (multilinearity exercised off the iid diagonal).
    import numpy as np

    from repro.core.quorum_system import QuorumSystem as Base

    rng = np.random.default_rng(seed)
    survive = list(rng.uniform(0.2, 0.99, system.n))
    structured = system.availability_heterogeneous(survive)
    generic = Base.availability_heterogeneous(system, survive)
    assert structured == pytest.approx(generic, abs=1e-9)
