"""Tests for the §5 proportional line/cover distributions on grid nodes."""

import itertools

import numpy as np
import pytest

from repro.systems.hgrid import (
    HierarchicalGrid,
    cover_distribution,
    cover_inclusion_probabilities,
    line_distribution,
    line_inclusion_probabilities,
)


@pytest.fixture(scope="module", params=[(2, 2), (3, 2), (3, 3), (4, 4)])
def grid(request):
    return HierarchicalGrid.halving(*request.param)


class TestDistributions:
    def test_line_distribution_is_probability(self, grid):
        dist = line_distribution(grid._root)
        assert sum(dist.values()) == pytest.approx(1.0)
        assert all(p > 0 for p in dist.values())

    def test_cover_distribution_is_probability(self, grid):
        dist = cover_distribution(grid._root)
        assert sum(dist.values()) == pytest.approx(1.0)

    def test_line_support_is_the_line_family(self, grid):
        dist = line_distribution(grid._root)
        assert set(dist) == set(grid.full_lines())

    def test_cover_support_is_the_cover_family(self, grid):
        dist = cover_distribution(grid._root)
        assert set(dist) == set(grid.row_covers())

    def test_inclusion_matches_distribution(self, grid):
        # The inclusion-probability recursion equals the explicit
        # distribution's marginals.
        dist = line_distribution(grid._root)
        expected = np.zeros(grid.n)
        for line, prob in dist.items():
            for element in line:
                expected[element] += prob
        out = {}
        line_inclusion_probabilities(grid._root, out)
        got = np.zeros(grid.n)
        for element, prob in out.items():
            got[element] = prob
        assert np.allclose(got, expected)

    def test_cover_inclusion_matches_distribution(self, grid):
        dist = cover_distribution(grid._root)
        expected = np.zeros(grid.n)
        for cover, prob in dist.items():
            for element in cover:
                expected[element] += prob
        out = {}
        cover_inclusion_probabilities(grid._root, out)
        got = np.zeros(grid.n)
        for element, prob in out.items():
            got[element] = prob
        assert np.allclose(got, expected)

    def test_uniform_inclusion_on_square_grids(self):
        # On square layouts the proportional rule loads every element
        # equally: 1/rows for lines, 1/cols for covers.
        grid = HierarchicalGrid.halving(4, 4)
        out = {}
        line_inclusion_probabilities(grid._root, out)
        assert np.allclose(list(out.values()), 1 / 4)
        out = {}
        cover_inclusion_probabilities(grid._root, out)
        assert np.allclose(list(out.values()), 1 / 4)
