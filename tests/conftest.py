"""Shared fixtures and reference implementations for the test suite.

The reference implementations here are deliberately naive (brute force)
and independent from the library code they validate.
"""

from __future__ import annotations

import itertools
from typing import Iterable, List

import pytest

from repro.core import ExplicitQuorumSystem, Universe


def brute_force_failure_probability(system, p: float) -> float:
    """Reference F_p: direct sum over all 2^n crash configurations."""
    n = system.n
    quorums = system.minimal_quorums()
    q = 1.0 - p
    total = 0.0
    for mask in range(1 << n):
        alive = {i for i in range(n) if mask >> i & 1}
        probability = (q ** len(alive)) * (p ** (n - len(alive)))
        if not any(quorum <= alive for quorum in quorums):
            total += probability
    return total


def brute_force_minimal_transversals(system) -> set:
    """Reference dual computation by subset enumeration."""
    n = system.n
    quorums = system.minimal_quorums()
    hitting = []
    for size in range(n + 1):
        for combo in itertools.combinations(range(n), size):
            candidate = frozenset(combo)
            if all(candidate & quorum for quorum in quorums):
                if not any(kept < candidate for kept in hitting):
                    hitting.append(candidate)
    return set(hitting)


def tiny_majority(n: int = 5) -> ExplicitQuorumSystem:
    """Explicit majority-of-n used as a well-understood guinea pig."""
    need = n // 2 + 1
    quorums = [frozenset(c) for c in itertools.combinations(range(n), need)]
    return ExplicitQuorumSystem(Universe.of_size(n), quorums, name=f"maj{n}")


@pytest.fixture
def maj5() -> ExplicitQuorumSystem:
    """Majority-of-5 fixture."""
    return tiny_majority(5)
