"""Tests for the clock layer: wall/virtual clocks and the virtual loop."""

import asyncio
import time

import pytest

from repro.core import SimulationError
from repro.runtime import VirtualClock, VirtualTimeLoop, WallClock, run_virtual


class TestVirtualClock:
    def test_starts_at_zero(self):
        assert VirtualClock().now() == 0.0

    def test_custom_start(self):
        assert VirtualClock(start=42.0).now() == 42.0

    def test_advance(self):
        clock = VirtualClock()
        clock.advance(10.5)
        clock.advance(4.5)
        assert clock.now() == 15.0

    def test_advance_to(self):
        clock = VirtualClock()
        clock.advance_to(100.0)
        assert clock.now() == 100.0

    def test_never_rewinds(self):
        clock = VirtualClock(start=50.0)
        with pytest.raises(SimulationError):
            clock.advance(-1.0)
        with pytest.raises(SimulationError):
            clock.advance_to(49.0)


class TestWallClock:
    def test_now_tracks_monotonic(self):
        clock = WallClock()
        before = time.monotonic() * 1000.0
        now = clock.now()
        after = time.monotonic() * 1000.0
        assert before <= now <= after

    def test_sleep_is_real(self):
        clock = WallClock()
        started = time.monotonic()
        asyncio.run(clock.sleep(30.0))
        assert time.monotonic() - started >= 0.025


class TestVirtualTimeLoop:
    def test_long_sleep_is_instant(self):
        clock = VirtualClock()

        async def main():
            await asyncio.sleep(3600.0)  # one virtual hour
            return clock.now()

        started = time.monotonic()
        now_ms = run_virtual(main(), clock=clock)
        assert now_ms == pytest.approx(3_600_000.0)
        assert time.monotonic() - started < 1.0

    def test_clock_sleep_means_milliseconds(self):
        clock = VirtualClock()

        async def main():
            await clock.sleep(250.0)
            return clock.now()

        assert run_virtual(main(), clock=clock) == pytest.approx(250.0)

    def test_sleep_ordering_preserved(self):
        clock = VirtualClock()
        order = []

        async def sleeper(name, delay_ms):
            await clock.sleep(delay_ms)
            order.append((name, clock.now()))

        async def main():
            await asyncio.gather(
                sleeper("slow", 30.0), sleeper("fast", 10.0), sleeper("mid", 20.0)
            )

        run_virtual(main(), clock=clock)
        assert order == [
            ("fast", pytest.approx(10.0)),
            ("mid", pytest.approx(20.0)),
            ("slow", pytest.approx(30.0)),
        ]

    def test_wait_for_timeout_fires_virtually(self):
        clock = VirtualClock()

        async def main():
            with pytest.raises(asyncio.TimeoutError):
                await asyncio.wait_for(asyncio.Event().wait(), timeout=5.0)
            return clock.now()

        assert run_virtual(main(), clock=clock) == pytest.approx(5000.0)

    def test_deadlock_raises_instead_of_hanging(self):
        async def main():
            await asyncio.Event().wait()  # nothing will ever set it

        with pytest.raises(SimulationError, match="deadlock"):
            run_virtual(main())

    def test_loop_time_is_clock_seconds(self):
        clock = VirtualClock(start=2000.0)
        loop = VirtualTimeLoop(clock=clock)
        try:
            assert loop.time() == pytest.approx(2.0)
        finally:
            loop.close()

    def test_creates_own_clock_when_none_given(self):
        async def main():
            await asyncio.sleep(1.0)
            return asyncio.get_running_loop().clock.now()

        assert run_virtual(main()) == pytest.approx(1000.0)
