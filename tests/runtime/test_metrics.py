"""Tests for the shared metrics primitives."""

import pytest

from repro.runtime import Counter, Gauge, LatencyHistogram
from repro.runtime.metrics import KeyCounter
from repro.sim import LatencyStats


class TestCounter:
    def test_starts_at_zero(self):
        assert Counter() == 0
        assert int(Counter()) == 0

    def test_inc_and_iadd(self):
        counter = Counter()
        counter.inc()
        counter += 2
        assert counter == 3

    def test_rejects_decrements(self):
        counter = Counter(5)
        with pytest.raises(ValueError):
            counter.inc(-1)

    def test_numeric_interop(self):
        counter = Counter(10)
        assert counter + 5 == 15
        assert 5 + counter == 15
        assert counter - 4 == 6
        assert 14 - counter == 4
        assert counter * 2 == 20
        assert counter / 4 == 2.5
        assert 100 / counter == 10.0
        assert counter > 9 and counter >= 10 and counter < 11 and counter <= 10
        assert float(counter) == 10.0
        assert [0] * 3 == [0, 0, 0][counter - 10 :]  # __index__ works in slices

    def test_compares_with_other_counters(self):
        assert Counter(3) == Counter(3)
        assert Counter(2) < Counter(3)

    def test_bool_and_str(self):
        assert not Counter(0)
        assert Counter(1)
        assert str(Counter(7)) == "7"
        assert f"{Counter(7):>4}" == "   7"

    def test_shared_by_reference(self):
        # The reason Counter exists: a component and its observer share
        # one live count.
        counter = Counter()
        holder = {"ops": counter}
        counter.inc(3)
        assert holder["ops"] == 3


class TestGauge:
    def test_set_and_add(self):
        gauge = Gauge()
        gauge.set(1.5)
        gauge.add(-0.5)
        assert gauge == 1.0
        assert float(gauge) == 1.0

    def test_compares_and_formats(self):
        assert Gauge(2.0) > 1.0 or not Gauge(2.0) < 1.0
        assert Gauge(2.0) == Counter(2)
        assert f"{Gauge(2.5):.1f}" == "2.5"


class TestLatencyHistogram:
    def test_empty(self):
        histogram = LatencyHistogram()
        assert histogram.count == 0
        assert histogram.mean == 0.0
        assert histogram.percentile(99) == 0.0
        assert histogram.summary()["count"] == 0

    def test_mean_and_percentiles(self):
        histogram = LatencyHistogram()
        for value in range(1, 101):
            histogram.record(float(value))
        assert histogram.count == 100
        assert histogram.mean == pytest.approx(50.5)
        assert histogram.percentile(50) == pytest.approx(50.5)
        assert histogram.percentile(95) == pytest.approx(95.05)

    def test_summary_keys(self):
        histogram = LatencyHistogram([1.0, 2.0, 3.0])
        assert set(histogram.summary()) == {"count", "mean", "p50", "p95", "p99"}

    def test_merge(self):
        a = LatencyHistogram([1.0, 2.0])
        b = LatencyHistogram([3.0])
        a.merge(b)
        assert a.count == 3
        assert a.mean == pytest.approx(2.0)

    def test_latency_stats_is_a_view(self):
        # sim.LatencyStats is the histogram under its historical name.
        stats = LatencyStats()
        assert isinstance(stats, LatencyHistogram)
        stats.record(4.0)
        assert stats.count == 1

    def test_single_sample_every_percentile(self):
        histogram = LatencyHistogram([7.5])
        for q in (0, 1, 50, 95, 99, 100):
            assert histogram.percentile(q) == pytest.approx(7.5)
        summary = histogram.summary()
        assert summary["count"] == 1
        assert summary["mean"] == pytest.approx(7.5)
        assert summary["p50"] == summary["p99"] == pytest.approx(7.5)

    def test_merge_disjoint_ranges(self):
        low = LatencyHistogram([float(v) for v in range(1, 51)])
        high = LatencyHistogram([float(v) for v in range(1000, 1050)])
        low.merge(high)
        assert low.count == 100
        # The merged population spans both ranges: the median sits at the
        # boundary, the extremes belong to each source.
        assert low.percentile(0) == pytest.approx(1.0)
        assert low.percentile(100) == pytest.approx(1049.0)
        assert 50.0 <= low.percentile(50) <= 1000.0
        # Merging never mutates the source histogram.
        assert high.count == 50

    def test_merge_with_empty_is_identity(self):
        histogram = LatencyHistogram([1.0, 2.0, 3.0])
        histogram.merge(LatencyHistogram())
        assert histogram.count == 3
        assert histogram.percentile(50) == pytest.approx(2.0)
        empty = LatencyHistogram()
        empty.merge(histogram)
        assert empty.count == 3
        assert empty.mean == pytest.approx(2.0)


class TestKeyCounter:
    def test_empty(self):
        counter = KeyCounter()
        assert counter.total == 0
        assert counter.distinct == 0
        assert counter.top(5) == []

    def test_top_k_orders_ties_by_key(self):
        counter = KeyCounter()
        for key in ("kc", "ka", "kb"):
            counter.record(key, by=3)
        counter.record("hot", by=9)
        # Equal counts rank alphabetically — the view is a pure function
        # of the recorded multiset, independent of insertion order.
        assert counter.top(4) == [("hot", 9), ("ka", 3), ("kb", 3), ("kc", 3)]
        assert counter.top(2) == [("hot", 9), ("ka", 3)]

    def test_top_k_insertion_order_independent(self):
        a, b = KeyCounter(), KeyCounter()
        for key in ("k1", "k2", "k3"):
            a.record(key, by=2)
        for key in ("k3", "k1", "k2"):
            b.record(key, by=2)
        assert a.top(3) == b.top(3)

    def test_top_k_clamps_and_rejects_negative_by(self):
        counter = KeyCounter()
        counter.record("k", by=1)
        assert counter.top(0) == []
        assert counter.top(-1) == []
        with pytest.raises(ValueError):
            counter.record("k", by=-1)

    def test_merge_sums_counts(self):
        a, b = KeyCounter(), KeyCounter()
        a.record("shared", by=2)
        a.record("only-a")
        b.record("shared", by=5)
        b.record("only-b")
        a.merge(b)
        assert a.counts == {"shared": 7, "only-a": 1, "only-b": 1}
        assert a.top(1) == [("shared", 7)]
