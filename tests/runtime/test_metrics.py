"""Tests for the shared metrics primitives."""

import pytest

from repro.runtime import Counter, Gauge, LatencyHistogram
from repro.sim import LatencyStats


class TestCounter:
    def test_starts_at_zero(self):
        assert Counter() == 0
        assert int(Counter()) == 0

    def test_inc_and_iadd(self):
        counter = Counter()
        counter.inc()
        counter += 2
        assert counter == 3

    def test_rejects_decrements(self):
        counter = Counter(5)
        with pytest.raises(ValueError):
            counter.inc(-1)

    def test_numeric_interop(self):
        counter = Counter(10)
        assert counter + 5 == 15
        assert 5 + counter == 15
        assert counter - 4 == 6
        assert 14 - counter == 4
        assert counter * 2 == 20
        assert counter / 4 == 2.5
        assert 100 / counter == 10.0
        assert counter > 9 and counter >= 10 and counter < 11 and counter <= 10
        assert float(counter) == 10.0
        assert [0] * 3 == [0, 0, 0][counter - 10 :]  # __index__ works in slices

    def test_compares_with_other_counters(self):
        assert Counter(3) == Counter(3)
        assert Counter(2) < Counter(3)

    def test_bool_and_str(self):
        assert not Counter(0)
        assert Counter(1)
        assert str(Counter(7)) == "7"
        assert f"{Counter(7):>4}" == "   7"

    def test_shared_by_reference(self):
        # The reason Counter exists: a component and its observer share
        # one live count.
        counter = Counter()
        holder = {"ops": counter}
        counter.inc(3)
        assert holder["ops"] == 3


class TestGauge:
    def test_set_and_add(self):
        gauge = Gauge()
        gauge.set(1.5)
        gauge.add(-0.5)
        assert gauge == 1.0
        assert float(gauge) == 1.0

    def test_compares_and_formats(self):
        assert Gauge(2.0) > 1.0 or not Gauge(2.0) < 1.0
        assert Gauge(2.0) == Counter(2)
        assert f"{Gauge(2.5):.1f}" == "2.5"


class TestLatencyHistogram:
    def test_empty(self):
        histogram = LatencyHistogram()
        assert histogram.count == 0
        assert histogram.mean == 0.0
        assert histogram.percentile(99) == 0.0
        assert histogram.summary()["count"] == 0

    def test_mean_and_percentiles(self):
        histogram = LatencyHistogram()
        for value in range(1, 101):
            histogram.record(float(value))
        assert histogram.count == 100
        assert histogram.mean == pytest.approx(50.5)
        assert histogram.percentile(50) == pytest.approx(50.5)
        assert histogram.percentile(95) == pytest.approx(95.05)

    def test_summary_keys(self):
        histogram = LatencyHistogram([1.0, 2.0, 3.0])
        assert set(histogram.summary()) == {"count", "mean", "p50", "p95", "p99"}

    def test_merge(self):
        a = LatencyHistogram([1.0, 2.0])
        b = LatencyHistogram([3.0])
        a.merge(b)
        assert a.count == 3
        assert a.mean == pytest.approx(2.0)

    def test_latency_stats_is_a_view(self):
        # sim.LatencyStats is the histogram under its historical name.
        stats = LatencyStats()
        assert isinstance(stats, LatencyHistogram)
        stats.record(4.0)
        assert stats.count == 1
