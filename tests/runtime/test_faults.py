"""Tests for runtime fault-model additions (the schedule core is covered
by ``tests/service/test_faults.py``, which exercises it through the
service re-export)."""

import numpy as np
import pytest

from repro.core import SimulationError
from repro.runtime import (
    CrashFault,
    DropFault,
    FaultSchedule,
    FlappingFault,
    Window,
    iid_crash_schedule,
    sample_iid_crash_set,
)


class TestIidCrashSchedule:
    def test_matches_raw_sampling_stream(self):
        # The schedule consumes one draw per id per epoch in id order —
        # the exact stream the legacy injector consumed.
        ids = list(range(5))
        schedule = iid_crash_schedule(
            np.random.default_rng(9), ids, 0.5, horizon=3.0, epoch=1.0
        )
        reference = np.random.default_rng(9)
        for index in range(4):  # epochs at t = 0, 1, 2 and 3 (inclusive)
            expected = sample_iid_crash_set(reference, ids, 0.5)
            assert schedule.crash_down_at(index + 0.5) == expected

    def test_draw_count_includes_horizon_boundary(self):
        # run(until=horizon) fires the event at exactly t == horizon, so
        # the schedule draws floor(horizon/epoch) + 1 crash sets.
        ids = list(range(20))
        rng = np.random.default_rng(0)
        iid_crash_schedule(rng, ids, 0.5, horizon=10.0, epoch=1.0)
        follow_on = rng.random()
        reference = np.random.default_rng(0)
        reference.random(11 * len(ids))
        assert follow_on == reference.random()

    def test_windows_cover_each_epoch(self):
        schedule = iid_crash_schedule(
            np.random.default_rng(1), range(10), 0.9, horizon=2.0, epoch=1.0
        )
        for fault in schedule:
            assert fault.window.end - fault.window.start == pytest.approx(1.0)

    def test_validation(self):
        rng = np.random.default_rng(0)
        with pytest.raises(SimulationError):
            iid_crash_schedule(rng, [0], 0.5, horizon=1.0, epoch=0.0)
        with pytest.raises(SimulationError):
            iid_crash_schedule(rng, [0], 0.5, horizon=-1.0)
        with pytest.raises(SimulationError):
            iid_crash_schedule(rng, [0], 1.5, horizon=1.0)


class TestChangePoints:
    def test_crash_window_boundaries(self):
        schedule = FaultSchedule(
            [
                CrashFault(frozenset({0}), Window(2.0, 5.0)),
                CrashFault(frozenset({1}), Window(4.0, 9.0)),
            ]
        )
        assert schedule.change_points(10.0) == [0.0, 2.0, 4.0, 5.0, 9.0]

    def test_flapping_phase_toggles(self):
        schedule = FaultSchedule(
            [FlappingFault(frozenset({0}), Window(0.0, 20.0), period=10.0)]
        )
        points = schedule.change_points(20.0)
        assert points == [0.0, 5.0, 10.0, 15.0, 20.0]

    def test_link_faults_ignored(self):
        schedule = FaultSchedule(
            [DropFault(frozenset({0}), Window(3.0, 7.0), probability=1.0)]
        )
        assert schedule.change_points(10.0) == [0.0]

    def test_clamped_to_horizon(self):
        schedule = FaultSchedule([CrashFault(frozenset({0}), Window(2.0, 50.0))])
        assert schedule.change_points(10.0) == [0.0, 2.0]
