"""Tests for runtime fault-model additions (the schedule core is covered
by ``tests/service/test_faults.py``, which exercises it through the
service re-export)."""

import numpy as np
import pytest

from repro.core import SimulationError
from repro.core.errors import ServiceError
from repro.runtime import (
    ByzantineFault,
    CrashFault,
    DropFault,
    FaultSchedule,
    FlappingFault,
    Window,
    iid_crash_schedule,
    sample_iid_crash_set,
)


class TestIidCrashSchedule:
    def test_matches_raw_sampling_stream(self):
        # The schedule consumes one draw per id per epoch in id order —
        # the exact stream the legacy injector consumed.
        ids = list(range(5))
        schedule = iid_crash_schedule(
            np.random.default_rng(9), ids, 0.5, horizon=3.0, epoch=1.0
        )
        reference = np.random.default_rng(9)
        for index in range(4):  # epochs at t = 0, 1, 2 and 3 (inclusive)
            expected = sample_iid_crash_set(reference, ids, 0.5)
            assert schedule.crash_down_at(index + 0.5) == expected

    def test_draw_count_includes_horizon_boundary(self):
        # run(until=horizon) fires the event at exactly t == horizon, so
        # the schedule draws floor(horizon/epoch) + 1 crash sets.
        ids = list(range(20))
        rng = np.random.default_rng(0)
        iid_crash_schedule(rng, ids, 0.5, horizon=10.0, epoch=1.0)
        follow_on = rng.random()
        reference = np.random.default_rng(0)
        reference.random(11 * len(ids))
        assert follow_on == reference.random()

    def test_windows_cover_each_epoch(self):
        schedule = iid_crash_schedule(
            np.random.default_rng(1), range(10), 0.9, horizon=2.0, epoch=1.0
        )
        for fault in schedule:
            assert fault.window.end - fault.window.start == pytest.approx(1.0)

    def test_validation(self):
        rng = np.random.default_rng(0)
        with pytest.raises(SimulationError):
            iid_crash_schedule(rng, [0], 0.5, horizon=1.0, epoch=0.0)
        with pytest.raises(SimulationError):
            iid_crash_schedule(rng, [0], 0.5, horizon=-1.0)
        with pytest.raises(SimulationError):
            iid_crash_schedule(rng, [0], 1.5, horizon=1.0)


class TestChangePoints:
    def test_crash_window_boundaries(self):
        schedule = FaultSchedule(
            [
                CrashFault(frozenset({0}), Window(2.0, 5.0)),
                CrashFault(frozenset({1}), Window(4.0, 9.0)),
            ]
        )
        assert schedule.change_points(10.0) == [0.0, 2.0, 4.0, 5.0, 9.0]

    def test_flapping_phase_toggles(self):
        schedule = FaultSchedule(
            [FlappingFault(frozenset({0}), Window(0.0, 20.0), period=10.0)]
        )
        points = schedule.change_points(20.0)
        assert points == [0.0, 5.0, 10.0, 15.0, 20.0]

    def test_link_faults_ignored(self):
        schedule = FaultSchedule(
            [DropFault(frozenset({0}), Window(3.0, 7.0), probability=1.0)]
        )
        assert schedule.change_points(10.0) == [0.0]

    def test_clamped_to_horizon(self):
        schedule = FaultSchedule([CrashFault(frozenset({0}), Window(2.0, 50.0))])
        assert schedule.change_points(10.0) == [0.0, 2.0]


class TestByzantineFault:
    def test_unknown_mode_rejected(self):
        with pytest.raises(ServiceError):
            ByzantineFault(frozenset({0}), Window(0.0), mode="gaslight")

    def test_default_mode_is_wrong_value(self):
        fault = ByzantineFault(frozenset({0}), Window(0.0))
        assert fault.mode == "wrong_value"
        assert fault.kind == "byzantine"

    def test_mode_query_respects_window_and_membership(self):
        schedule = FaultSchedule(
            [ByzantineFault(frozenset({1, 3}), Window(5.0, 10.0), mode="equivocate")]
        )
        assert schedule.byzantine_mode_at(7.0, 1) == "equivocate"
        assert schedule.byzantine_mode_at(7.0, 3) == "equivocate"
        assert schedule.byzantine_mode_at(7.0, 2) is None
        assert schedule.byzantine_mode_at(4.9, 1) is None
        assert schedule.byzantine_mode_at(10.0, 1) is None  # half-open

    def test_first_active_rule_wins(self):
        schedule = FaultSchedule(
            [
                ByzantineFault(frozenset({0}), Window(0.0), mode="stale_timestamp"),
                ByzantineFault(frozenset({0}), Window(0.0), mode="wrong_value"),
            ]
        )
        assert schedule.byzantine_mode_at(1.0, 0) == "stale_timestamp"

    def test_byzantine_replicas_unions_all_rules(self):
        schedule = FaultSchedule(
            [
                ByzantineFault(frozenset({0}), Window(0.0, 5.0)),
                ByzantineFault(frozenset({2, 4}), Window(50.0), mode="equivocate"),
                CrashFault(frozenset({1}), Window(0.0)),
            ]
        )
        assert schedule.byzantine_replicas() == frozenset({0, 2, 4})

    def test_byzantine_does_not_join_crash_down_set(self):
        # Liars look healthy: reachability queries must not exclude them.
        schedule = FaultSchedule([ByzantineFault(frozenset({0}), Window(0.0))])
        assert schedule.crash_down_at(1.0) == frozenset()
        assert schedule.change_points(10.0) == [0.0]

    def test_to_dict_counts_byzantine_rules(self):
        schedule = FaultSchedule(
            [
                ByzantineFault(frozenset({0}), Window(0.0)),
                CrashFault(frozenset({1}), Window(0.0, 5.0)),
            ]
        )
        assert schedule.to_dict()["by_kind"] == {"byzantine": 1, "crash": 1}
