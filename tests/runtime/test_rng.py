"""Tests for named seeded RNG streams."""

import numpy as np
import pytest

from repro.runtime import RngStreams


class TestRngStreams:
    def test_same_name_same_draws(self):
        a = RngStreams(7).stream("transport").random(8)
        b = RngStreams(7).stream("transport").random(8)
        assert np.array_equal(a, b)

    def test_different_names_differ(self):
        streams = RngStreams(7)
        a = streams.stream("transport").random(8)
        b = streams.stream("schedule").random(8)
        assert not np.array_equal(a, b)

    def test_different_root_seeds_differ(self):
        a = RngStreams(0).stream("transport").random(8)
        b = RngStreams(1).stream("transport").random(8)
        assert not np.array_equal(a, b)

    def test_creation_order_independent(self):
        # The whole point of named streams: creating other streams first
        # (in any order, any number) never shifts a stream's draws.
        alone = RngStreams(3).stream("chaos.plan").random(4)
        crowded = RngStreams(3)
        for name in ("z", "a", "chaos.transport", "m.n.o"):
            crowded.stream(name).random(100)
        assert np.array_equal(crowded.stream("chaos.plan").random(4), alone)

    def test_stream_instance_is_cached(self):
        streams = RngStreams(0)
        assert streams.stream("x") is streams.stream("x")

    def test_seed_for_is_pure(self):
        streams = RngStreams(5)
        first = streams.seed_for("loadgen.client.0")
        streams.stream("loadgen.client.0").random(50)  # advancing is irrelevant
        assert streams.seed_for("loadgen.client.0") == first
        assert RngStreams(5).seed_for("loadgen.client.0") == first

    def test_seed_for_fits_in_63_bits(self):
        for name in ("a", "b", "chaos.faults.3"):
            seed = RngStreams(123).seed_for(name)
            assert 0 <= seed < 2**63

    def test_seed_for_distinct_across_names(self):
        streams = RngStreams(0)
        seeds = {streams.seed_for(f"client.{i}") for i in range(100)}
        assert len(seeds) == 100

    def test_empty_name_rejected(self):
        with pytest.raises(ValueError):
            RngStreams(0).stream("")
