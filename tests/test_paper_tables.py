"""The paper's tables, asserted value by value.

Every entry of Tables 1-4 that our calibrated constructions reproduce
*exactly* is asserted to 6 decimal places (the paper's precision); the
documented deviations (Paths everywhere, h-T-grid at 5x5) are asserted
to the achieved tolerance and flagged in EXPERIMENTS.md.

These tests are the ground truth of the reproduction; the benchmark
harness prints the same numbers in table form.
"""

import pytest

from repro.systems import (
    CrumblingWallQuorumSystem,
    HQSQuorumSystem,
    HierarchicalGrid,
    HierarchicalTGrid,
    HierarchicalTriangle,
    MajorityQuorumSystem,
    YQuorumSystem,
)

P_GRID = (0.1, 0.2, 0.3, 0.5)
EXACT = 1.5e-6  # table entries carry 6 decimals (+- last-digit rounding)


# ----------------------------------------------------------------------
# Table 1 — h-grid vs h-T-grid failure probability.
# ----------------------------------------------------------------------
TABLE1_HGRID = {
    (3, 3): (0.016893, 0.109235, 0.286224, 0.716797),
    (4, 4): (0.005799, 0.069318, 0.243795, 0.746628),
    (5, 5): (0.001753, 0.039439, 0.191581, 0.751019),
    (6, 4): (0.001949, 0.034161, 0.167172, 0.725377),  # "4 cols, 6 lines"
}

TABLE1_HTGRID = {
    (3, 3): (0.015213, 0.098585, 0.259783, 0.667969),
    (4, 4): (0.005361, 0.063866, 0.225066, 0.706604),
    (6, 4): (0.000611, 0.016690, 0.104402, 0.598435),
}

# Our 5x5 h-T-grid quorum family is marginally richer than the authors'
# (see EXPERIMENTS.md); agreement is within 0.25% relative.
TABLE1_HTGRID_55 = (0.001621, 0.036300, 0.176290, 0.708871)


@pytest.mark.parametrize("dims", sorted(TABLE1_HGRID))
def test_table1_hgrid(dims):
    system = HierarchicalGrid.halving(*dims)
    for p, expected in zip(P_GRID, TABLE1_HGRID[dims]):
        assert system.failure_probability_exact(p) == pytest.approx(expected, abs=EXACT)


@pytest.mark.parametrize("dims", sorted(TABLE1_HTGRID))
def test_table1_htgrid(dims):
    system = HierarchicalTGrid.halving(*dims)
    for p, expected in zip(P_GRID, TABLE1_HTGRID[dims]):
        assert system.failure_probability(p, method="shannon") == pytest.approx(
            expected, abs=EXACT
        )


def test_table1_htgrid_5x5_close():
    system = HierarchicalTGrid.halving(5, 5)
    for p, expected in zip(P_GRID, TABLE1_HTGRID_55):
        got = system.failure_probability(p, method="shannon")
        assert got == pytest.approx(expected, rel=0.01)
        assert got <= expected + EXACT  # we are never worse


def test_table1_improvement_claims():
    # §4.3: ~7.5-10% improvement on squares; >3x on the 4x6 grid, which
    # even beats the 25-node square.
    for dims in ((3, 3), (4, 4)):
        hgrid = HierarchicalGrid.halving(*dims).failure_probability_exact(0.1)
        htgrid = HierarchicalTGrid.halving(*dims).failure_probability(0.1)
        improvement = (hgrid - htgrid) / hgrid
        assert 0.05 < improvement < 0.15
    rect = HierarchicalTGrid.halving(6, 4).failure_probability(0.1)
    rect_hgrid = HierarchicalGrid.halving(6, 4).failure_probability_exact(0.1)
    assert rect < rect_hgrid / 3
    square25 = HierarchicalGrid.halving(5, 5).failure_probability_exact(0.1)
    assert rect < square25


# ----------------------------------------------------------------------
# Tables 2 and 3 — failure probability at ~15 and ~28 nodes.
# ----------------------------------------------------------------------
TABLE2 = {
    "majority": ((0.000034, 0.004240, 0.050013, 0.500000), MajorityQuorumSystem.of_size, 15),
    "hqs": ((0.000210, 0.009567, 0.070946, 0.500000), lambda n: HQSQuorumSystem.balanced([5, 3]), 15),
    "cwlog": ((0.001639, 0.021787, 0.099915, 0.500000), CrumblingWallQuorumSystem.cwlog, 14),
    # The paper labels this column "(16)", but its values are exactly
    # the 3x3 (9-node) h-T-grid of Table 1 — a labelling slip in the
    # paper; we reproduce the printed numbers with the 3x3 instance
    # (our 16-node value, 0.005361 at p=0.1, equals Table 1's 4x4 cell).
    "h-t-grid": ((0.015213, 0.098585, 0.259783, 0.667969), lambda n: HierarchicalTGrid.halving(3, 3), 9),
    "y": ((0.000745, 0.017603, 0.093599, 0.500000), YQuorumSystem.of_size, 15),
    "h-triang": ((0.000677, 0.016577, 0.090712, 0.500000), HierarchicalTriangle.of_size, 15),
}

TABLE3 = {
    # "Majority (28)": the printed values (and Table 4's quorum size 14
    # and load ~51%) match the 27-element majority exactly — the paper
    # evidently used an odd universe.
    "majority": ((0.000000, 0.000229, 0.014257, 0.500000), MajorityQuorumSystem.of_size, 27),
    "hqs": ((0.000016, 0.002681, 0.039626, 0.500000), lambda n: HQSQuorumSystem.balanced([3, 3, 3]), 27),
    "cwlog": ((0.000205, 0.006865, 0.056988, 0.500000), CrumblingWallQuorumSystem.cwlog, 29),
    "y": ((0.000057, 0.005012, 0.052777, 0.500000), YQuorumSystem.of_size, 28),
    "h-triang": ((0.000055, 0.004851, 0.051670, 0.500000), HierarchicalTriangle.of_size, 28),
}


@pytest.mark.parametrize("name", sorted(TABLE2))
def test_table2(name):
    expected, factory, n = TABLE2[name]
    system = factory(n)
    for p, value in zip(P_GRID, expected):
        assert system.failure_probability(p) == pytest.approx(value, abs=EXACT)


@pytest.mark.parametrize("name", sorted(TABLE3))
def test_table3(name):
    expected, factory, n = TABLE3[name]
    system = factory(n)
    for p, value in zip(P_GRID, expected):
        assert system.failure_probability(p) == pytest.approx(value, abs=EXACT)


def test_table3_htgrid_25_is_table1_5x5():
    # Table 3's h-T-grid column is the 5x5 instance of Table 1.
    system = HierarchicalTGrid.halving(5, 5)
    assert system.failure_probability(0.2, method="shannon") == pytest.approx(
        0.036300, rel=0.01
    )


def test_tables23_htriang_beats_other_sqrt_systems():
    # §6: among the O(sqrt(n))-quorum systems, h-triang is best.
    p = 0.1
    tri = HierarchicalTriangle.of_size(15).failure_probability(p)
    y = YQuorumSystem.of_size(15).failure_probability(p)
    htg = HierarchicalTGrid.halving(4, 4).failure_probability(p)
    assert tri < y < htg


# ----------------------------------------------------------------------
# Table 4 — quorum sizes and loads.
# ----------------------------------------------------------------------
def test_table4_sizes_15():
    assert MajorityQuorumSystem.of_size(15).quorum_size == 8
    assert HQSQuorumSystem.balanced([5, 3]).quorum_size_formula() == 6
    cw = CrumblingWallQuorumSystem.cwlog(14)
    assert (cw.smallest_quorum_size(), cw.largest_quorum_size()) == (3, 6)
    ht = HierarchicalTGrid.halving(4, 4)
    assert (ht.smallest_quorum_size(), ht.largest_quorum_size()) == (4, 7)
    y = YQuorumSystem.of_size(15)
    assert (y.smallest_quorum_size(), y.largest_quorum_size()) == (5, 6)
    tri = HierarchicalTriangle.of_size(15)
    assert (tri.smallest_quorum_size(), tri.largest_quorum_size()) == (5, 5)


def test_table4_sizes_28():
    # Table 4 prints 14 for "Majority (28)": that is the 27-element
    # instance (14 = 27//2 + 1), consistent with Table 3.
    assert MajorityQuorumSystem.of_size(27).quorum_size == 14
    assert HQSQuorumSystem.balanced([3, 3, 3]).quorum_size_formula() == 8
    cw = CrumblingWallQuorumSystem.cwlog(29)
    assert (cw.smallest_quorum_size(), cw.largest_quorum_size()) == (4, 10)
    tri = HierarchicalTriangle.of_size(28)
    assert (tri.smallest_quorum_size(), tri.largest_quorum_size()) == (7, 7)
    assert YQuorumSystem.of_size(28).smallest_quorum_size() == 7


def test_table4_sizes_100():
    # ~100 nodes row: majority 51, h-triang 14/14, cwlog min 5.
    assert MajorityQuorumSystem.of_size(101).quorum_size == 51
    tri = HierarchicalTriangle.of_size(105)
    assert (tri.smallest_quorum_size(), tri.largest_quorum_size()) == (14, 14)
    # cwlog(99) ends on an exact width-5 row (the paper's min 5);
    # cwlog(100) folds the one-element remainder into the bottom row.
    assert CrumblingWallQuorumSystem.cwlog(99).smallest_quorum_size() == 5
    assert CrumblingWallQuorumSystem.cwlog(100).smallest_quorum_size() == 6
    assert CrumblingWallQuorumSystem.cwlog(99).largest_quorum_size() == 25


def test_table4_loads():
    assert MajorityQuorumSystem.of_size(15).load_exact() == pytest.approx(8 / 15)
    assert HQSQuorumSystem.balanced([5, 3]).load_exact() == pytest.approx(0.40)
    assert HierarchicalTriangle.of_size(15).load_exact() == pytest.approx(1 / 3)
    assert HierarchicalTriangle.of_size(28).load_exact() == pytest.approx(0.25)
    # CWlog trade-off strategy loads (§6): 55.5% and 43.7%.
    cw14 = CrumblingWallQuorumSystem.cwlog(14).tradeoff_strategy()
    assert cw14.induced_load() == pytest.approx(0.5555, abs=1e-3)
    cw29 = CrumblingWallQuorumSystem.cwlog(29).tradeoff_strategy()
    assert cw29.induced_load() == pytest.approx(0.437, abs=1e-3)
    # h-T-grid line strategy: 41% > measured >= 36.5% lower variant.
    ht = HierarchicalTGrid.halving(4, 4)
    assert ht.line_based_strategy().induced_load() == pytest.approx(0.365, abs=0.005)


def test_table4_cwlog_tradeoff_sizes():
    cw14 = CrumblingWallQuorumSystem.cwlog(14).tradeoff_strategy()
    assert cw14.average_quorum_size() == pytest.approx(4.0)
    cw29 = CrumblingWallQuorumSystem.cwlog(29).tradeoff_strategy()
    assert cw29.average_quorum_size() == pytest.approx(5.25)
