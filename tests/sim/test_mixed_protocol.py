"""Integration: §4.2's mixed protocol.

"It is still possible to manage replicated data using the read quorum
defined in the h-grid and the quorum defined in the h-T-grid to manage
the read and the exclusive write operations, respectively."

We run exactly that over the simulator: reads contact h-grid row-covers,
exclusive writes contact h-T-grid quorums, and regularity holds because
every h-T-grid quorum intersects every row-cover.
"""

import pytest

from repro.sim import Network, ReplicaNode, ReplicatedRegisterClient, Simulator
from repro.systems import HierarchicalGrid, HierarchicalTGrid


@pytest.fixture(scope="module")
def systems():
    hgrid = HierarchicalGrid.halving(4, 4)
    htgrid = HierarchicalTGrid.halving(4, 4)
    return hgrid, htgrid


class TestMixedQuorums:
    def test_every_write_quorum_hits_every_read_cover(self, systems):
        hgrid, htgrid = systems
        covers = hgrid.row_covers()
        for quorum in htgrid.minimal_quorums():
            for cover in covers:
                assert quorum & cover

    def test_reads_see_exclusive_writes(self, systems):
        hgrid, htgrid = systems
        sim = Simulator(seed=0)
        net = Network(sim)
        for element in hgrid.universe.ids:
            ReplicaNode(element, net)
        client = ReplicatedRegisterClient(100, net)

        write_quorums = list(htgrid.minimal_quorums())
        read_quorums = hgrid.row_covers()
        results = []
        # Alternate exclusive writes (h-T-grid) and reads (covers),
        # rotating over different quorums each time.
        for k in range(6):
            wq = write_quorums[(37 * k) % len(write_quorums)]
            rq = read_quorums[(11 * k) % len(read_quorums)]
            client.read_write([wq], lambda v, k=k: k, on_done=results.append)
            sim.run()
            client.read([rq], on_done=results.append)
            sim.run()
        assert all(r.ok for r in results)
        for k in range(6):
            write, read = results[2 * k], results[2 * k + 1]
            assert read.value == write.value == k
            assert read.version >= write.version

    def test_write_quorums_are_smaller_than_rw_quorums(self, systems):
        hgrid, htgrid = systems
        # The point of using h-T-grid for the exclusive operation: its
        # smallest quorums beat the h-grid's constant 2*sqrt(n)-1.
        assert htgrid.smallest_quorum_size() < hgrid.smallest_quorum_size()
