"""Tests for quorum-based mutual exclusion."""

import pytest

from repro.core import ExplicitQuorumSystem, ProtocolError, Strategy, Universe
from repro.sim import MutexMonitor, MutexNode, Network, Simulator
from repro.systems import (
    HierarchicalTGrid,
    HierarchicalTriangle,
    MajorityQuorumSystem,
    YQuorumSystem,
)


def run_mutex_workload(system, requests=12, seed=0, hold=1.5, spacing=0.4):
    """Drive `requests` CS requests through the system; return monitor."""
    sim = Simulator(seed=seed)
    net = Network(sim)
    nodes = [MutexNode(i, net) for i in range(system.n)]
    monitor = MutexMonitor()
    strategy = Strategy.uniform(system)

    def make_request(node):
        if node._quorum is not None:
            # The node still has a request in flight (a previous logical
            # client); retry shortly, like a queued local client would.
            sim.schedule(1.0, make_request, node)
            return
        quorum = strategy.sample(sim.rng)

        def acquired():
            monitor.enter(node.node_id)

            def leave():
                monitor.leave(node.node_id)
                node.release_cs()

            sim.schedule(hold, leave)

        node.request_cs(quorum, acquired)

    for k in range(requests):
        sim.schedule(k * spacing, make_request, nodes[k % system.n])
    sim.run(until=100_000)
    return monitor


class TestSafety:
    @pytest.mark.parametrize(
        "system",
        [
            MajorityQuorumSystem.of_size(5),
            HierarchicalTriangle(4),
            HierarchicalTGrid.halving(3, 3),
            YQuorumSystem(4),
        ],
        ids=lambda s: s.system_name,
    )
    def test_no_violations_and_all_served(self, system):
        monitor = run_mutex_workload(system)
        assert monitor.violations == 0
        assert monitor.entries == 12

    def test_multiple_seeds(self):
        system = HierarchicalTriangle(4)
        for seed in range(5):
            monitor = run_mutex_workload(system, seed=seed)
            assert monitor.violations == 0
            assert monitor.entries == 12

    def test_broken_system_is_detected(self):
        # Sanity check of the monitor itself: disjoint "quorums" allow
        # simultaneous critical sections.
        broken = ExplicitQuorumSystem(
            Universe.of_size(4), [{0, 1}, {2, 3}], validate=False
        )
        monitor = run_mutex_workload(broken, requests=6, spacing=0.0, hold=50.0)
        assert monitor.violations > 0


class TestContention:
    def test_heavy_contention_all_eventually_served(self):
        system = HierarchicalTriangle(4)
        monitor = run_mutex_workload(system, requests=10, spacing=0.0, hold=0.5)
        assert monitor.violations == 0
        assert monitor.entries == 10

    def test_grant_load_distribution(self):
        # Under the uniform strategy every member should see some grants.
        system = MajorityQuorumSystem.of_size(5)
        sim = Simulator(seed=2)
        net = Network(sim)
        nodes = [MutexNode(i, net) for i in range(5)]
        strategy = Strategy.uniform(system)

        def cycle(node, remaining):
            if remaining == 0:
                return
            quorum = strategy.sample(sim.rng)

            def acquired():
                node.release_cs()
                sim.schedule(1.0, cycle, node, remaining - 1)

            node.request_cs(quorum, acquired)

        cycle(nodes[0], 50)
        sim.run(until=100_000)
        grants = [n.grants_issued for n in nodes]
        assert sum(grants) == 50 * 3
        assert all(g > 0 for g in grants)


class TestProtocolErrors:
    def test_double_request_rejected(self):
        sim = Simulator()
        net = Network(sim)
        node = MutexNode(0, net)
        other = MutexNode(1, net)
        node.request_cs(frozenset({1}), lambda: None)
        with pytest.raises(ProtocolError):
            node.request_cs(frozenset({1}), lambda: None)

    def test_release_without_cs_rejected(self):
        sim = Simulator()
        net = Network(sim)
        node = MutexNode(0, net)
        with pytest.raises(ProtocolError):
            node.release_cs()

    def test_crash_clears_state(self):
        sim = Simulator()
        net = Network(sim)
        a, b = MutexNode(0, net), MutexNode(1, net)
        a.request_cs(frozenset({1}), lambda: None)
        a.crash()
        assert not a.in_critical_section
        a.recover()
        # After recovery a fresh request is allowed.
        a.request_cs(frozenset({1}), lambda: None)


class TestTimeouts:
    def test_request_timeout_aborts_and_returns_grants(self):
        from repro.sim import Network, Simulator

        sim = Simulator()
        net = Network(sim)
        nodes = [MutexNode(i, net) for i in range(4)]
        nodes[2].crash()  # one quorum member is down
        failed = []
        nodes[0].request_cs(
            frozenset({1, 2, 3}),
            on_acquired=lambda: pytest.fail("must not acquire"),
            timeout=20.0,
            on_failed=lambda: failed.append(True),
        )
        sim.run(until=100.0)
        assert failed == [True]
        assert nodes[0].requests_aborted == 1
        # The live members' grants were returned: a fresh request from
        # another node over the live members succeeds.
        acquired = []
        nodes[3].request_cs(frozenset({1, 3}), on_acquired=lambda: acquired.append(True))
        sim.run(until=200.0)
        assert acquired == [True]

    def test_timeout_noop_after_acquisition(self):
        from repro.sim import Network, Simulator

        sim = Simulator()
        net = Network(sim)
        nodes = [MutexNode(i, net) for i in range(3)]
        acquired = []
        nodes[0].request_cs(
            frozenset({1, 2}),
            on_acquired=lambda: acquired.append(True),
            timeout=50.0,
            on_failed=lambda: pytest.fail("acquired request must not abort"),
        )
        sim.run(until=200.0)
        assert acquired == [True]
        assert nodes[0].requests_aborted == 0

    def test_safety_under_crash_recovery(self):
        # Arbiter grant state is durable: a member crashing and
        # recovering while a grant is outstanding cannot double-grant.
        from repro.core import Strategy
        from repro.sim import Network, Simulator
        from repro.systems import HierarchicalTriangle

        system = HierarchicalTriangle(4)
        sim = Simulator(seed=9)
        net = Network(sim)
        nodes = [MutexNode(i, net) for i in range(system.n)]
        monitor = MutexMonitor()
        strategy = Strategy.uniform(system)

        def request(node, hold):
            if node._quorum is not None:
                sim.schedule(2.0, request, node, hold)
                return
            quorum = strategy.sample(sim.rng)

            def acquired():
                monitor.enter(node.node_id)

                def leave():
                    monitor.leave(node.node_id)
                    if node.in_critical_section:
                        node.release_cs()

                sim.schedule(hold, leave)

            node.request_cs(quorum, acquired, timeout=40.0)

        for k in range(10):
            sim.schedule(k * 3.0, request, nodes[k % system.n], 2.0)
        # Crash and recover a rotating member while requests are live.
        for k, victim in enumerate((1, 3, 5, 7)):
            sim.schedule(5.0 + 7.0 * k, nodes[victim].crash)
            sim.schedule(9.0 + 7.0 * k, nodes[victim].recover)
        sim.run(until=100_000)
        assert monitor.violations == 0
