"""Tests for the event engine, network and node lifecycle."""

import pytest

from repro.core import SimulationError
from repro.sim import (
    ExponentialLatency,
    LatencyModel,
    Message,
    Network,
    Node,
    Simulator,
    UniformLatency,
)


class Recorder(Node):
    """Test node recording everything it receives."""

    def __init__(self, node_id, network):
        super().__init__(node_id, network)
        self.inbox = []

    def on_message(self, src, message):
        self.inbox.append((self.sim.now, src, message.kind))


class TestEngine:
    def test_time_ordering(self):
        sim = Simulator()
        order = []
        sim.schedule(5.0, order.append, "late")
        sim.schedule(1.0, order.append, "early")
        sim.schedule(3.0, order.append, "middle")
        sim.run()
        assert order == ["early", "middle", "late"]

    def test_fifo_tie_break(self):
        sim = Simulator()
        order = []
        for tag in ("a", "b", "c"):
            sim.schedule(1.0, order.append, tag)
        sim.run()
        assert order == ["a", "b", "c"]

    def test_run_until(self):
        sim = Simulator()
        fired = []
        sim.schedule(10.0, fired.append, 1)
        assert sim.run(until=5.0) == 5.0
        assert not fired
        sim.run()
        assert fired == [1]

    def test_nested_scheduling(self):
        sim = Simulator()
        seen = []

        def first():
            seen.append(sim.now)
            sim.schedule(2.0, second)

        def second():
            seen.append(sim.now)

        sim.schedule(1.0, first)
        sim.run()
        assert seen == [1.0, 3.0]

    def test_negative_delay_rejected(self):
        with pytest.raises(SimulationError):
            Simulator().schedule(-1.0, lambda: None)

    def test_stop(self):
        sim = Simulator()
        seen = []
        sim.schedule(1.0, lambda: (seen.append(1), sim.stop()))
        sim.schedule(2.0, seen.append, 2)
        sim.run()
        assert seen == [1]

    def test_runaway_guard(self):
        sim = Simulator()

        def loop():
            sim.schedule(0.0, loop)

        sim.schedule(0.0, loop)
        with pytest.raises(SimulationError):
            sim.run(max_events=100)

    def test_determinism(self):
        def trace(seed):
            sim = Simulator(seed=seed)
            values = []
            for _ in range(5):
                delay = float(sim.rng.exponential(1.0))
                sim.schedule(delay, lambda: values.append(sim.now))
            sim.run()
            return values

        assert trace(3) == trace(3)
        assert trace(3) != trace(4)


class TestLatencyModels:
    def test_fixed(self):
        assert LatencyModel(2.5).sample(Simulator()) == 2.5

    def test_fixed_validation(self):
        with pytest.raises(SimulationError):
            LatencyModel(-1.0)

    def test_uniform_range(self):
        sim = Simulator(seed=0)
        model = UniformLatency(1.0, 2.0)
        for _ in range(100):
            assert 1.0 <= model.sample(sim) <= 2.0

    def test_uniform_validation(self):
        with pytest.raises(SimulationError):
            UniformLatency(3.0, 2.0)

    def test_exponential_floor(self):
        sim = Simulator(seed=0)
        model = ExponentialLatency(mean=1.0, floor=0.5)
        assert all(model.sample(sim) >= 0.5 for _ in range(50))


class TestNetwork:
    def test_delivery(self):
        sim = Simulator()
        net = Network(sim, latency=LatencyModel(2.0))
        a, b = Recorder(0, net), Recorder(1, net)
        net.send(0, 1, Message("ping"))
        sim.run()
        assert b.inbox == [(2.0, 0, "ping")]

    def test_duplicate_ids_rejected(self):
        sim = Simulator()
        net = Network(sim)
        Recorder(0, net)
        with pytest.raises(SimulationError):
            Recorder(0, net)

    def test_unknown_node(self):
        net = Network(Simulator())
        with pytest.raises(SimulationError):
            net.node(9)

    def test_drops(self):
        sim = Simulator(seed=0)
        net = Network(sim, drop_probability=0.5)
        a, b = Recorder(0, net), Recorder(1, net)
        for _ in range(200):
            net.send(0, 1, Message("ping"))
        sim.run()
        assert 60 < len(b.inbox) < 140
        assert net.messages_dropped + net.messages_delivered == 200

    def test_drop_probability_validation(self):
        with pytest.raises(SimulationError):
            Network(Simulator(), drop_probability=1.0)

    def test_partition_blocks_cross_group(self):
        sim = Simulator()
        net = Network(sim)
        a, b, c = Recorder(0, net), Recorder(1, net), Recorder(2, net)
        net.set_partition([{0, 1}, {2}])
        net.send(0, 1, Message("in-group"))
        net.send(0, 2, Message("cross"))
        sim.run()
        assert [m[2] for m in b.inbox] == ["in-group"]
        assert c.inbox == []

    def test_heal_partition(self):
        sim = Simulator()
        net = Network(sim)
        a, c = Recorder(0, net), Recorder(2, net)
        net.set_partition([{0}, {2}])
        net.heal_partition()
        net.send(0, 2, Message("hello"))
        sim.run()
        assert len(c.inbox) == 1


class TestNodeLifecycle:
    def test_crashed_node_ignores_messages(self):
        sim = Simulator()
        net = Network(sim)
        a, b = Recorder(0, net), Recorder(1, net)
        b.crash()
        net.send(0, 1, Message("ping"))
        sim.run()
        assert b.inbox == []
        assert net.messages_dropped == 1

    def test_crashed_node_cannot_send(self):
        sim = Simulator()
        net = Network(sim)
        a, b = Recorder(0, net), Recorder(1, net)
        a.crash()
        a.send(1, Message("ping"))
        sim.run()
        assert b.inbox == []

    def test_recovery(self):
        sim = Simulator()
        net = Network(sim)
        a, b = Recorder(0, net), Recorder(1, net)
        b.crash()
        b.recover()
        net.send(0, 1, Message("ping"))
        sim.run()
        assert len(b.inbox) == 1
        assert b.crash_count == 1

    def test_crash_idempotent(self):
        net = Network(Simulator())
        node = Recorder(0, net)
        node.crash()
        node.crash()
        assert node.crash_count == 1

    def test_base_node_requires_handler(self):
        sim = Simulator()
        net = Network(sim)
        node = Node(0, net)
        net.send(0, 0, Message("ping"))
        with pytest.raises(SimulationError):
            sim.run()
