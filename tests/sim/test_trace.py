"""Tests for simulator event tracing."""

import pytest

from repro.core import SimulationError
from repro.sim import Message, Network, Node, Simulator
from repro.sim.trace import Tracer, TracingNetworkMixin, attach_crash_tracing


class Echo(Node):
    def on_message(self, src, message):
        pass


class TestTracer:
    def test_record_and_query(self):
        tracer = Tracer()
        tracer.record(1.0, "send", node=0, dst=1)
        tracer.record(2.0, "deliver", node=1, src=0)
        assert len(tracer) == 2
        assert len(tracer.events(category="send")) == 1
        assert tracer.events(node=1)[0].category == "deliver"
        assert tracer.events(since=1.5)[0].time == 2.0

    def test_capacity_drops_oldest(self):
        tracer = Tracer(capacity=3)
        for k in range(5):
            tracer.record(float(k), "tick")
        assert len(tracer) == 3
        assert tracer.dropped == 2
        assert tracer.events()[0].time == 2.0

    def test_capacity_validation(self):
        with pytest.raises(SimulationError):
            Tracer(capacity=0)

    def test_categories_and_timeline(self):
        tracer = Tracer()
        tracer.record(1.0, "send", node=0)
        tracer.record(2.0, "send", node=1)
        tracer.record(3.0, "crash", node=1)
        assert tracer.categories() == {"send": 2, "crash": 1}
        text = tracer.timeline(limit=2)
        assert "crash" in text
        assert text.count("\n") == 1

    def test_json_roundtrip(self, tmp_path):
        tracer = Tracer()
        tracer.record(1.5, "send", node=3, dst=4, kind="ping")
        path = tmp_path / "trace.json"
        tracer.save(path)
        restored = Tracer.from_json(path.read_text())
        assert len(restored) == 1
        event = restored.events()[0]
        assert event.time == 1.5
        assert event.detail == {"dst": 4, "kind": "ping"}


class TestNetworkTracing:
    def test_send_and_deliver_traced(self):
        sim = Simulator()
        net = Network(sim)
        a, b = Echo(0, net), Echo(1, net)
        tracer = Tracer()
        TracingNetworkMixin.attach(net, tracer)
        net.send(0, 1, Message("ping"))
        sim.run()
        assert tracer.categories() == {"send": 1, "deliver": 1}
        deliver = tracer.events(category="deliver")[0]
        assert deliver.node == 1
        assert deliver.detail["kind"] == "ping"

    def test_crash_tracing(self):
        sim = Simulator()
        net = Network(sim)
        node = Echo(0, net)
        tracer = Tracer()
        attach_crash_tracing(net, tracer)
        node.crash()
        node.crash()  # idempotent: only one event
        node.recover()
        assert [e.category for e in tracer.events()] == ["crash", "recover"]

    def test_traced_protocol_run(self):
        # Tracing a small mutex run yields a coherent message timeline.
        from repro.core import Strategy
        from repro.sim import MutexMonitor, MutexNode
        from repro.systems import HierarchicalTriangle

        system = HierarchicalTriangle(3)
        sim = Simulator(seed=0)
        net = Network(sim)
        nodes = [MutexNode(i, net) for i in range(system.n)]
        tracer = Tracer()
        TracingNetworkMixin.attach(net, tracer)
        quorum = system.minimal_quorums()[0]
        done = []
        nodes[0].request_cs(quorum, lambda: done.append(True))
        sim.run()
        assert done == [True]
        kinds = {e.detail["kind"] for e in tracer.events(category="send")}
        assert "request" in kinds
        assert "grant" in kinds
