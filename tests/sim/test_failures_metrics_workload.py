"""Tests for failure injection, metrics and workload generators."""

import numpy as np
import pytest

from repro.core import SimulationError, Strategy
from repro.runtime import CrashFault, FaultSchedule, FlappingFault, Window
from repro.sim import (
    AvailabilityProbe,
    ClosedLoopWorkload,
    IidCrashInjector,
    LatencyStats,
    LoadMeter,
    Network,
    Node,
    PartitionInjector,
    PoissonWorkload,
    QuorumPicker,
    ReplicaNode,
    ScheduleInjector,
    Simulator,
    TargetedCrashInjector,
    alive_set,
    iid_crash_schedule,
)
from repro.systems import HierarchicalTriangle, MajorityQuorumSystem

# The imperative injectors are deprecated in favour of ScheduleInjector
# but must keep working until removal; silence their warnings here and
# assert they fire in TestDeprecations.
legacy = pytest.mark.filterwarnings("ignore::DeprecationWarning")


class Sink(Node):
    def on_message(self, src, message):
        pass


@legacy
class TestIidCrashInjector:
    def test_crash_rate(self):
        sim = Simulator(seed=0)
        net = Network(sim)
        nodes = [Sink(i, net) for i in range(10)]
        injector = IidCrashInjector(net, p=0.3, epoch=1.0)
        injector.start()
        down_fractions = []

        def sample():
            down = sum(1 for i in net.node_ids if not net.node(i).alive)
            down_fractions.append(down / 10)
            if sim.now < 3000:
                sim.schedule(1.0, sample)

        sim.schedule(0.5, sample)
        sim.run(until=3000)
        assert np.mean(down_fractions) == pytest.approx(0.3, abs=0.02)

    def test_validation(self):
        net = Network(Simulator())
        with pytest.raises(SimulationError):
            IidCrashInjector(net, p=1.5)
        with pytest.raises(SimulationError):
            IidCrashInjector(net, p=0.1, epoch=0.0)

    def test_alive_set(self):
        net = Network(Simulator())
        nodes = [Sink(i, net) for i in range(4)]
        nodes[2].crash()
        assert alive_set(net) == frozenset({0, 1, 3})


@legacy
class TestTargetedAndPartitionInjectors:
    def test_targeted_crash_and_recovery(self):
        sim = Simulator()
        net = Network(sim)
        nodes = [Sink(i, net) for i in range(3)]
        TargetedCrashInjector(net, victims=[0, 2], at=5.0, duration=10.0)
        sim.run(until=6.0)
        assert alive_set(net) == frozenset({1})
        sim.run(until=20.0)
        assert alive_set(net) == frozenset({0, 1, 2})

    def test_partition_injector(self):
        sim = Simulator()
        net = Network(sim)
        nodes = [Sink(i, net) for i in range(4)]
        PartitionInjector(net, groups=[[0, 1], [2, 3]], at=1.0, duration=5.0)
        sim.run(until=2.0)
        assert not net._connected(0, 2)
        assert net._connected(0, 1)
        sim.run(until=10.0)
        assert net._connected(0, 2)


class TestScheduleInjector:
    def test_applies_crash_windows_eventwise(self):
        sim = Simulator()
        net = Network(sim)
        nodes = [Sink(i, net) for i in range(4)]
        schedule = FaultSchedule(
            [
                CrashFault(frozenset({0, 2}), Window(5.0, 10.0)),
                CrashFault(frozenset({1}), Window(8.0, 12.0)),
            ]
        )
        ScheduleInjector(net, schedule, horizon=20.0).start()
        sim.run(until=6.0)
        assert alive_set(net) == frozenset({1, 3})
        sim.run(until=9.0)
        assert alive_set(net) == frozenset({3})
        sim.run(until=11.0)
        assert alive_set(net) == frozenset({0, 2, 3})
        sim.run(until=20.0)
        assert alive_set(net) == frozenset({0, 1, 2, 3})

    def test_flapping_fault_toggles(self):
        sim = Simulator()
        net = Network(sim)
        nodes = [Sink(i, net) for i in range(2)]
        schedule = FaultSchedule(
            [FlappingFault(frozenset({0}), Window(0.0, 20.0), period=10.0)]
        )
        ScheduleInjector(net, schedule, horizon=20.0).start()
        sim.run(until=2.0)
        assert alive_set(net) == frozenset({1})
        sim.run(until=7.0)
        assert alive_set(net) == frozenset({0, 1})
        sim.run(until=12.0)
        assert alive_set(net) == frozenset({1})

    def test_step_mode_matches_legacy_injector(self):
        # Same seed: the declarative schedule reproduces the imperative
        # injector's crash sets draw-for-draw.
        def run_legacy():
            sim = Simulator(seed=7)
            net = Network(sim)
            nodes = [Sink(i, net) for i in range(6)]
            seen = []
            with pytest.warns(DeprecationWarning):
                injector = IidCrashInjector(
                    net,
                    p=0.4,
                    epoch=1.0,
                    on_epoch=lambda index: seen.append(alive_set(net)),
                )
            injector.start()
            sim.run(until=50.0)
            return seen

        def run_schedule():
            sim = Simulator(seed=7)
            net = Network(sim)
            nodes = [Sink(i, net) for i in range(6)]
            seen = []
            schedule = iid_crash_schedule(sim.rng, net.node_ids, 0.4, horizon=50.0)
            ScheduleInjector(
                net,
                schedule,
                horizon=50.0,
                step=1.0,
                on_step=lambda index: seen.append(alive_set(net)),
            ).start()
            sim.run(until=50.0)
            return seen

        assert run_legacy() == run_schedule()

    def test_validation(self):
        net = Network(Simulator())
        with pytest.raises(SimulationError):
            ScheduleInjector(
                net, FaultSchedule(), horizon=10.0, on_step=lambda index: None
            )
        with pytest.raises(SimulationError):
            ScheduleInjector(net, FaultSchedule(), horizon=10.0, step=0.0)


class TestDeprecations:
    def test_legacy_injectors_warn(self):
        net = Network(Simulator())
        Sink(0, net)
        with pytest.warns(DeprecationWarning, match="ScheduleInjector"):
            IidCrashInjector(net, p=0.1)
        with pytest.warns(DeprecationWarning, match="ScheduleInjector"):
            TargetedCrashInjector(net, victims=[0], at=1.0)
        with pytest.warns(DeprecationWarning, match="Network.set_partition"):
            PartitionInjector(net, groups=[[0]], at=1.0)


class TestAvailabilityProbe:
    def test_converges_to_analytic(self):
        system = MajorityQuorumSystem.of_size(5)
        sim = Simulator(seed=11)
        net = Network(sim)
        nodes = [Sink(i, net) for i in range(system.n)]
        probe = AvailabilityProbe(system, net)
        schedule = iid_crash_schedule(sim.rng, net.node_ids, 0.3, horizon=30_000.0)
        ScheduleInjector(
            net, schedule, horizon=30_000.0, step=1.0, on_step=probe.observe
        ).start()
        sim.run(until=30_000)
        exact = system.failure_probability(0.3)
        assert abs(probe.failure_rate - exact) < probe.confidence_half_width() + 0.01

    def test_empty_probe(self):
        net = Network(Simulator())
        Sink(0, net)
        probe = AvailabilityProbe(MajorityQuorumSystem.of_size(1), net)
        assert probe.failure_rate == 0.0
        assert probe.confidence_half_width() == 1.0


class TestLoadMeter:
    def test_counts(self):
        meter = LoadMeter(4)
        meter.record_quorum({0, 1})
        meter.record_quorum({1, 2})
        loads = meter.empirical_loads()
        assert loads[1] == pytest.approx(1.0)
        assert loads[0] == pytest.approx(0.5)
        assert meter.max_load == pytest.approx(1.0)

    def test_empty(self):
        assert LoadMeter(3).max_load == 0.0

    def test_converges_to_strategy_load(self):
        system = HierarchicalTriangle(4)
        strategy = Strategy.uniform(system)
        meter = LoadMeter(system.n)
        rng = np.random.default_rng(0)
        for _ in range(20_000):
            meter.record_quorum(strategy.sample(rng))
        assert meter.max_load == pytest.approx(strategy.induced_load(), abs=0.01)


class TestLatencyStats:
    def test_aggregates(self):
        stats = LatencyStats()
        for value in (1.0, 2.0, 3.0):
            stats.record(value)
        assert stats.count == 3
        assert stats.mean == pytest.approx(2.0)
        assert stats.percentile(50) == pytest.approx(2.0)

    def test_empty(self):
        stats = LatencyStats()
        assert stats.mean == 0.0
        assert stats.percentile(99) == 0.0


class TestWorkloads:
    def test_closed_loop_completes_all(self):
        sim = Simulator(seed=0)
        completions = []

        def operation(on_done):
            sim.schedule(1.0, on_done, "ok")

        workload = ClosedLoopWorkload(sim, operation, think_time=0.5, operations=20)
        workload.start()
        sim.run()
        assert len(workload.completed) == 20

    def test_poisson_rate(self):
        sim = Simulator(seed=1)
        workload = PoissonWorkload(sim, lambda: None, rate=2.0, stop_at=1000.0)
        workload.start()
        sim.run(until=1100.0)
        # ~2000 arrivals expected.
        assert 1800 < workload.issued < 2200

    def test_poisson_validation(self):
        with pytest.raises(SimulationError):
            PoissonWorkload(Simulator(), lambda: None, rate=0.0)

    def test_quorum_picker(self):
        system = HierarchicalTriangle(3)
        picker = QuorumPicker(Strategy.uniform(system), fallbacks=2)
        sim = Simulator(seed=0)
        candidates = picker.pick(sim)
        assert len(candidates) == 3
        for quorum in candidates:
            assert system.contains_quorum(quorum)

    def test_quorum_picker_validation(self):
        system = HierarchicalTriangle(3)
        with pytest.raises(SimulationError):
            QuorumPicker(Strategy.uniform(system), fallbacks=-1)
