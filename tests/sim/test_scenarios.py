"""Tests for the canned experiment scenarios."""

import pytest

from repro.core import Strategy
from repro.sim import (
    measure_availability,
    measure_strategy_load,
    mutex_cluster,
    replicated_cluster,
)
from repro.systems import HierarchicalTriangle, MajorityQuorumSystem


class TestClusters:
    def test_replicated_cluster_shape(self):
        system = HierarchicalTriangle(4)
        cluster = replicated_cluster(system, seed=1)
        assert len(cluster.replicas) == system.n
        results = []
        cluster.client.read_write(
            list(system.minimal_quorums())[:1], lambda v: 5, on_done=results.append
        )
        cluster.sim.run()
        assert results[0].ok and results[0].value == 5

    def test_mutex_cluster_shape(self):
        system = MajorityQuorumSystem.of_size(5)
        cluster = mutex_cluster(system, seed=2)
        done = []
        cluster.nodes[0].request_cs(
            system.minimal_quorums()[0], lambda: done.append(True)
        )
        cluster.sim.run()
        assert done == [True]
        assert cluster.monitor.capacity == 1


class TestMeasurements:
    def test_availability_probe_converges(self):
        system = MajorityQuorumSystem.of_size(5)
        probe = measure_availability(system, p=0.3, epochs=20_000, seed=3)
        exact = system.failure_probability(0.3)
        assert abs(probe.failure_rate - exact) <= probe.confidence_half_width() + 0.01

    def test_strategy_load_converges(self):
        system = HierarchicalTriangle(4)
        strategy = system.balanced_strategy()
        meter = measure_strategy_load(strategy, operations=20_000, seed=4)
        assert meter.max_load == pytest.approx(strategy.induced_load(), abs=0.01)
