"""Tests for online reconfiguration (live §5 growth)."""

import pytest

from repro.core import ProtocolError
from repro.sim import (
    Network,
    ReconfigurableRegister,
    ReplicaNode,
    ReplicatedRegisterClient,
    Simulator,
)
from repro.systems import HierarchicalTriangle


def make_setup(old_system, new_system, seed=0):
    sim = Simulator(seed=seed)
    net = Network(sim)
    # Replicas for the union of both epochs' universes.
    for element in range(max(old_system.n, new_system.n)):
        ReplicaNode(element, net)
    client = ReplicatedRegisterClient(500, net)
    register = ReconfigurableRegister(client, old_system)
    return sim, net, register


@pytest.fixture(scope="module")
def grown_pair():
    old = HierarchicalTriangle(3, subgrid="flat")
    new = old.grown("t2")  # 6 -> 10 elements
    return old, new


class TestReconfiguration:
    def test_value_survives_migration(self, grown_pair):
        old, new = grown_pair
        sim, net, register = make_setup(old, new)
        outcomes = []
        register.write(lambda v: "precious", outcomes.append)
        sim.run()
        assert outcomes[0].ok

        flips = []
        register.reconfigure(new, flips.append)
        sim.run()
        assert flips == [True]
        assert register.epoch == 1
        assert register.system is new

        register.read(outcomes.append)
        sim.run()
        assert outcomes[-1].ok
        assert outcomes[-1].value == "precious"

    def test_operations_blocked_during_migration(self, grown_pair):
        old, new = grown_pair
        sim, net, register = make_setup(old, new)
        register.reconfigure(new, lambda ok: None)
        with pytest.raises(ProtocolError):
            register.read(lambda r: None)
        sim.run()  # let the migration finish

    def test_failed_migration_keeps_old_epoch(self, grown_pair):
        old, new = grown_pair
        sim, net, register = make_setup(old, new)
        outcomes = []
        register.write(lambda v: 1, outcomes.append)
        sim.run()
        # Crash enough *new* elements that no new-epoch quorum is alive:
        # kill everything outside the old universe plus one old element
        # present in every new quorum... simplest: kill all new-only
        # elements AND all old elements, leaving nothing.
        for element in range(new.n):
            net.node(element).crash()
        flips = []
        register.reconfigure(new, flips.append)
        sim.run()
        assert flips == [False]
        assert register.epoch == 0
        assert register.system is old
        # Recover: the register still serves from the old epoch.
        for element in range(new.n):
            net.node(element).recover()
        register.read(outcomes.append)
        sim.run()
        assert outcomes[-1].ok
        assert outcomes[-1].value == 1

    def test_new_epoch_availability_improves(self, grown_pair):
        old, new = grown_pair
        # The point of growing: the new system is strictly more available.
        assert new.failure_probability(0.1) < old.failure_probability(0.1)

    def test_candidate_validation(self, grown_pair):
        old, new = grown_pair
        sim, net, _ = make_setup(old, new)
        client = ReplicatedRegisterClient(600, net)
        with pytest.raises(ProtocolError):
            ReconfigurableRegister(client, old, candidate_quorums=0)

    def test_chained_growth(self):
        # Grow twice in a row: t=2 -> grown -> grown again.
        base = HierarchicalTriangle(2, subgrid="flat")
        step1 = base.grown("t2")
        step2 = HierarchicalTriangle.from_spec(step1._spec_of(step1._root))
        sim = Simulator(seed=1)
        net = Network(sim)
        for element in range(step1.n):
            ReplicaNode(element, net)
        client = ReplicatedRegisterClient(500, net)
        register = ReconfigurableRegister(client, base)
        done = []
        register.write(lambda v: 7, done.append)
        sim.run()
        register.reconfigure(step1, done.append)
        sim.run()
        register.reconfigure(step2, done.append)
        sim.run()
        assert register.epoch == 2
        register.read(done.append)
        sim.run()
        assert done[-1].value == 7
