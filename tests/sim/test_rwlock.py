"""Tests for the quorum reader-writer lock (§4.1 semantics)."""

import pytest

from repro.core import ProtocolError
from repro.sim import Network, Simulator
from repro.sim.protocols.rwlock import RWLockMonitor, RWLockNode
from repro.systems import HierarchicalGrid


@pytest.fixture()
def cluster():
    grid = HierarchicalGrid.halving(3, 3)
    sim = Simulator(seed=0)
    net = Network(sim)
    nodes = [RWLockNode(i, net) for i in range(grid.n)]
    monitor = RWLockMonitor()
    return grid, sim, net, nodes, monitor


def hold_then_release(sim, monitor, node, mode, hold):
    def acquired():
        monitor.enter(node.node_id, mode)

        def leave():
            monitor.leave(node.node_id, mode)
            node.release()

        sim.schedule(hold, leave)

    return acquired


class TestSharedLocks:
    def test_concurrent_readers_allowed(self, cluster):
        grid, sim, net, nodes, monitor = cluster
        covers = grid.row_covers()
        # Three overlapping readers at once.
        for k in range(3):
            node = nodes[k]
            cover = covers[k % len(covers)]
            sim.schedule(
                0.1 * k,
                node.acquire_shared,
                cover,
                hold_then_release(sim, monitor, node, "shared", 50.0),
            )
        sim.run(until=10_000)
        assert monitor.violations == 0
        assert monitor.reader_sessions == 3
        assert monitor.max_concurrent_readers == 3  # truly concurrent

    def test_reader_blocks_writer(self, cluster):
        grid, sim, net, nodes, monitor = cluster
        cover = grid.row_covers()[0]
        rw = grid.minimal_quorums()[0]
        events = []
        nodes[0].acquire_shared(cover, lambda: events.append(("read", sim.now)))
        sim.run(until=10.0)
        nodes[1].acquire_exclusive(rw, lambda: events.append(("write", sim.now)))
        sim.run(until=50.0)
        # Writer must wait: only the read has fired so far.
        assert [kind for kind, _ in events] == ["read"]
        nodes[0]._held = nodes[0]._held  # reader still holds
        nodes[0].release()
        sim.run(until=200.0)
        assert [kind for kind, _ in events] == ["read", "write"]


class TestExclusiveLocks:
    def test_writers_exclude_each_other(self, cluster):
        grid, sim, net, nodes, monitor = cluster
        quorums = grid.minimal_quorums()
        for k in range(4):
            node = nodes[k]
            quorum = quorums[(k * 7) % len(quorums)]
            sim.schedule(
                0.05 * k,
                node.acquire_exclusive,
                quorum,
                hold_then_release(sim, monitor, node, "exclusive", 3.0),
            )
        sim.run(until=100_000)
        assert monitor.violations == 0
        assert monitor.writer_sessions == 4

    def test_mixed_workload_safety(self, cluster):
        grid, sim, net, nodes, monitor = cluster
        covers = grid.row_covers()
        quorums = grid.minimal_quorums()
        for k in range(9):
            node = nodes[k % len(nodes)]
            if node._mode is not None or node._held is not None:
                continue
            if k % 3 == 0:
                quorum = quorums[(k * 5) % len(quorums)]
                sim.schedule(
                    0.3 * k,
                    node.acquire_exclusive,
                    quorum,
                    hold_then_release(sim, monitor, node, "exclusive", 2.0),
                )
            else:
                cover = covers[(k * 11) % len(covers)]
                sim.schedule(
                    0.3 * k,
                    node.acquire_shared,
                    cover,
                    hold_then_release(sim, monitor, node, "shared", 2.0),
                )
        sim.run(until=100_000)
        assert monitor.violations == 0
        assert monitor.reader_sessions + monitor.writer_sessions >= 6


class TestProtocolErrors:
    def test_double_acquire_rejected(self, cluster):
        grid, sim, net, nodes, monitor = cluster
        cover = grid.row_covers()[0]
        nodes[0].acquire_shared(cover, lambda: None)
        with pytest.raises(ProtocolError):
            nodes[0].acquire_shared(cover, lambda: None)

    def test_release_without_lock_rejected(self, cluster):
        grid, sim, net, nodes, monitor = cluster
        with pytest.raises(ProtocolError):
            nodes[0].release()

    def test_crash_clears_requester_state(self, cluster):
        grid, sim, net, nodes, monitor = cluster
        cover = grid.row_covers()[0]
        nodes[0].acquire_shared(cover, lambda: None)
        nodes[0].crash()
        assert nodes[0].holds_lock is None
        nodes[0].recover()
        nodes[0].acquire_shared(cover, lambda: None)  # fresh request allowed
