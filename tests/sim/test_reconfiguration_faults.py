"""Reconfiguration under injected faults (satellite of the sharding PR).

The drain/seal -> transfer -> flip handoff of
:mod:`repro.sim.protocols.reconfiguration` must abort cleanly — old
epoch intact, value readable, retry possible — when replicas crash or
the network partitions mid-handoff.  ``majority:3 -> majority:5`` makes
the abort points easy to force deterministically: any two old replicas
seal, but a new-epoch transfer needs three of five.
"""

import pytest

from repro.cli import build_system
from repro.core import ProtocolError
from repro.sim import (
    Network,
    ReconfigurableRegister,
    ReplicaNode,
    ReplicatedRegisterClient,
    Simulator,
)

CLIENT_ID = 500


def make_setup(old_system, new_system, seed=0):
    sim = Simulator(seed=seed)
    net = Network(sim)
    for element in range(max(old_system.n, new_system.n)):
        ReplicaNode(element, net)
    client = ReplicatedRegisterClient(CLIENT_ID, net)
    # Plenty of candidate quorums per attempt: with faults active only
    # one specific quorum may be alive, and candidates are sampled at
    # random — the tests must fail on protocol bugs, not on sampling.
    register = ReconfigurableRegister(client, old_system, candidate_quorums=12)
    return sim, net, register


@pytest.fixture()
def majority_pair():
    return build_system("majority:3"), build_system("majority:5")


class TestCrashMidHandoff:
    def test_transfer_crash_aborts_then_retry_succeeds(self, majority_pair):
        old, new = majority_pair
        sim, net, register = make_setup(old, new)
        done = []
        register.write(lambda v: "survivor", done.append)
        sim.run()
        assert done[0].ok

        # Crash between the epochs: {0,1} still seals the old system
        # (2-of-3) but no new-epoch quorum (3-of-5) is alive, so the
        # handoff fails after the seal, at the transfer.
        for element in (2, 3, 4):
            net.node(element).crash()
        flips = []
        register.reconfigure(new, flips.append)
        sim.run()
        assert flips == [False]
        assert register.epoch == 0
        assert register.system is old
        # The seal read succeeded, the transfer write failed.
        assert register.migrations[-2].ok
        assert not register.migrations[-1].ok

        # The old epoch keeps serving the committed value.
        register.read(done.append)
        sim.run()
        assert done[-1].ok and done[-1].value == "survivor"

        # Recovery: the same migration, retried, commits.
        for element in (2, 3, 4):
            net.node(element).recover()
        register.reconfigure(new, flips.append)
        sim.run()
        assert flips == [False, True]
        assert register.epoch == 1
        assert register.system is new
        register.read(done.append)
        sim.run()
        assert done[-1].ok and done[-1].value == "survivor"

    def test_seal_crash_aborts_before_any_transfer(self, majority_pair):
        old, new = majority_pair
        sim, net, register = make_setup(old, new)
        done = []
        register.write(lambda v: 11, done.append)
        sim.run()

        # Only replica 0 of the old epoch survives: the seal itself
        # cannot reach a quorum, so the migration aborts at step one.
        for element in (1, 2):
            net.node(element).crash()
        migrations_before = len(register.migrations)
        flips = []
        register.reconfigure(new, flips.append)
        sim.run()
        assert flips == [False]
        assert register.epoch == 0
        # Exactly one (failed) seal attempt, no transfer was issued.
        assert len(register.migrations) == migrations_before + 1
        assert not register.migrations[-1].ok

    def test_operations_still_blocked_while_faulty_migration_runs(
        self, majority_pair
    ):
        old, new = majority_pair
        sim, net, register = make_setup(old, new)
        for element in (2, 3, 4):
            net.node(element).crash()
        register.reconfigure(new, lambda ok: None)
        with pytest.raises(ProtocolError):
            register.write(lambda v: "rejected", lambda r: None)
        sim.run()  # the abort unblocks the register
        done = []
        register.read(done.append)
        sim.run()
        assert done[-1].ok


class TestPartitionDuringCopy:
    def test_partition_fails_transfer_heal_retries(self, majority_pair):
        old, new = majority_pair
        sim, net, register = make_setup(old, new)
        done = []
        register.write(lambda v: "quoted", done.append)
        sim.run()

        # The client's side of the partition holds an old-epoch quorum
        # ({0,1} is 2-of-3) but not a new-epoch one (needs 3-of-5): the
        # seal succeeds, the copy into the new epoch cannot.
        net.set_partition([[CLIENT_ID, 0, 1], [2, 3, 4]])
        flips = []
        register.reconfigure(new, flips.append)
        sim.run()
        assert flips == [False]
        assert register.epoch == 0
        assert register.system is old
        assert register.migrations[-2].ok  # seal crossed
        assert not register.migrations[-1].ok  # copy partitioned away

        # Still serving from the old epoch inside the majority side.
        register.read(done.append)
        sim.run()
        assert done[-1].ok and done[-1].value == "quoted"

        net.heal_partition()
        register.reconfigure(new, flips.append)
        sim.run()
        assert flips == [False, True]
        assert register.epoch == 1
        register.read(done.append)
        sim.run()
        assert done[-1].ok and done[-1].value == "quoted"

    def test_value_never_regresses_across_faulty_migrations(self, majority_pair):
        old, new = majority_pair
        sim, net, register = make_setup(old, new)
        done = []
        register.write(lambda v: 1, done.append)
        sim.run()

        net.set_partition([[CLIENT_ID, 0, 1], [2, 3, 4]])
        register.reconfigure(new, lambda ok: None)
        sim.run()  # aborts

        # Write again in the old epoch, then migrate for real: the
        # *newest* old-epoch value must be what crosses.
        register.write(lambda v: v + 1, done.append)
        sim.run()
        assert done[-1].value == 2

        net.heal_partition()
        flips = []
        register.reconfigure(new, flips.append)
        sim.run()
        assert flips == [True]
        register.read(done.append)
        sim.run()
        assert done[-1].ok and done[-1].value == 2
