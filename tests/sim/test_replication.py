"""Tests for the quorum-replicated register (h-grid data operations)."""

import pytest

from repro.core import ProtocolError
from repro.sim import (
    Network,
    ReplicaNode,
    ReplicatedRegisterClient,
    Simulator,
    UniformLatency,
)
from repro.systems import HierarchicalGrid


def make_cluster(n=16, seed=0, latency=None, timeout=50.0):
    sim = Simulator(seed=seed)
    net = Network(sim, latency=latency)
    replicas = [ReplicaNode(i, net) for i in range(n)]
    client = ReplicatedRegisterClient(1000, net, timeout=timeout)
    return sim, net, replicas, client


@pytest.fixture(scope="module")
def hgrid():
    return HierarchicalGrid.halving(4, 4)


class TestBasicOperations:
    def test_read_write_then_read(self, hgrid):
        sim, net, replicas, client = make_cluster()
        quorums = list(hgrid.minimal_quorums())[:2]
        results = []
        client.read_write(quorums, lambda v: 42, on_done=results.append)
        sim.run()
        client.read(quorums, on_done=results.append)
        sim.run()
        assert [r.ok for r in results] == [True, True]
        assert results[1].value == 42
        assert results[1].version >= results[0].version

    def test_blind_write_last_writer_wins(self, hgrid):
        sim, net, replicas, client = make_cluster()
        lines = hgrid.full_lines()
        covers = hgrid.row_covers()
        results = []
        client.blind_write([lines[0]], "first", on_done=results.append)
        sim.run()
        client.blind_write([lines[1]], "second", on_done=results.append)
        sim.run()
        client.read(covers[:1], on_done=results.append)
        sim.run()
        assert all(r.ok for r in results)
        # Row-covers intersect every full-line: the read sees the later
        # blind write.
        assert results[-1].value == "second"

    def test_successive_read_writes_increment_version(self, hgrid):
        sim, net, replicas, client = make_cluster()
        quorums = list(hgrid.minimal_quorums())[:1]
        results = []
        for k in range(3):
            client.read_write(quorums, lambda v, k=k: k, on_done=results.append)
            sim.run()
        versions = [r.version for r in results]
        assert versions == sorted(versions)
        assert len(set(versions)) == 3

    def test_read_initial_value(self, hgrid):
        sim, net, replicas, client = make_cluster()
        results = []
        client.read(list(hgrid.minimal_quorums())[:1], on_done=results.append)
        sim.run()
        assert results[0].ok
        assert results[0].value is None

    def test_empty_quorum_list_rejected(self, hgrid):
        sim, net, replicas, client = make_cluster()
        with pytest.raises(ProtocolError):
            client.read([])


class TestFailures:
    def test_operation_fails_when_quorum_down(self, hgrid):
        sim, net, replicas, client = make_cluster(timeout=10.0)
        quorum = list(hgrid.minimal_quorums())[0]
        victim = next(iter(quorum))
        replicas[victim].crash()
        results = []
        client.read([quorum], on_done=results.append)
        sim.run()
        assert not results[0].ok
        assert results[0].attempts == 1

    def test_retry_over_second_quorum(self, hgrid):
        sim, net, replicas, client = make_cluster(timeout=10.0)
        quorums = list(hgrid.minimal_quorums())
        first, second = quorums[0], None
        for candidate in quorums[1:]:
            if not (candidate & first):
                break
        # Quorums always intersect, so crash an element exclusive to the
        # first candidate instead.
        exclusive = next(iter(first - quorums[1]))
        replicas[exclusive].crash()
        results = []
        client.read([first, quorums[1]], on_done=results.append)
        sim.run()
        assert results[0].ok
        assert results[0].attempts == 2

    def test_regularity_under_crash_recovery(self, hgrid):
        # A read after a completed write sees that write even when other
        # replicas crashed in between (quorum intersection).
        sim, net, replicas, client = make_cluster(timeout=20.0)
        quorums = list(hgrid.minimal_quorums())
        results = []
        client.read_write(quorums[:1], lambda v: "durable", on_done=results.append)
        sim.run()
        assert results[0].ok
        # Crash everything *outside* the written quorum.
        written = quorums[0]
        for replica in replicas:
            if replica.node_id not in written:
                replica.crash()
        live_quorums = [q for q in quorums if q <= written]
        assert live_quorums, "written quorum should contain a live quorum"
        client.read(live_quorums[:1], on_done=results.append)
        sim.run()
        assert results[1].ok
        assert results[1].value == "durable"

    def test_replica_state_survives_crash(self, hgrid):
        sim, net, replicas, client = make_cluster()
        quorum = list(hgrid.minimal_quorums())[0]
        results = []
        client.read_write([quorum], lambda v: 7, on_done=results.append)
        sim.run()
        member = next(iter(quorum))
        replicas[member].crash()
        replicas[member].recover()
        assert replicas[member].value == 7


class TestLatency:
    def test_latency_recorded(self, hgrid):
        sim, net, replicas, client = make_cluster(latency=UniformLatency(1.0, 2.0))
        results = []
        client.read(list(hgrid.minimal_quorums())[:1], on_done=results.append)
        sim.run()
        # One round trip: between 2 and 4 time units.
        assert 2.0 <= results[0].latency <= 4.0

    def test_read_write_takes_two_rounds(self, hgrid):
        sim, net, replicas, client = make_cluster(latency=UniformLatency(1.0, 1.0))
        results = []
        client.read_write(
            list(hgrid.minimal_quorums())[:1], lambda v: 1, on_done=results.append
        )
        sim.run()
        assert results[0].latency == pytest.approx(4.0)


class TestPartitions:
    def test_majority_side_keeps_working(self, hgrid):
        from repro.systems import MajorityQuorumSystem

        system = MajorityQuorumSystem.of_size(5)
        sim, net, replicas, client = make_cluster(n=5, timeout=10.0)
        # Partition 3-2; the client (id 1000) lives with the majority side.
        net.set_partition([{0, 1, 2, 1000}, {3, 4}])
        majority_quorum = frozenset({0, 1, 2})
        minority_quorum = frozenset({2, 3, 4})
        results = []
        client.read_write([majority_quorum], lambda v: "committed",
                          on_done=results.append)
        sim.run()
        client.read([minority_quorum], on_done=results.append)
        sim.run()
        assert results[0].ok          # the majority side commits
        assert not results[1].ok      # quorums straddling the cut fail
        # Heal: the minority catches up on the next quorum operation.
        net.heal_partition()
        results.clear()
        client.read([minority_quorum], on_done=results.append)
        sim.run()
        assert results[0].ok
        # Quorum intersection: {2} carries the committed value across.
        assert results[0].value == "committed"

    def test_no_split_brain_across_partition(self, hgrid):
        # Two clients on opposite sides of a partition cannot both commit
        # exclusive writes: every read-write quorum needs nodes from both
        # sides of any cut that splits all quorums.
        sim, net, replicas, _ = make_cluster(timeout=8.0)
        left_client = ReplicatedRegisterClient(2000, net, timeout=8.0)
        right_client = ReplicatedRegisterClient(2001, net, timeout=8.0)
        quorums = list(hgrid.minimal_quorums())
        # Cut the grid into top half / bottom half: every rw quorum has a
        # full row plus covers of all rows, so it straddles the cut.
        top = {e for e in hgrid.universe.ids if hgrid.coordinates(e)[0] < 2}
        bottom = set(hgrid.universe.ids) - top
        net.set_partition([top | {2000}, bottom | {2001}])
        results = []
        left_client.read_write(quorums[:3], lambda v: "left", on_done=results.append)
        right_client.read_write(quorums[-3:], lambda v: "right", on_done=results.append)
        sim.run()
        assert not any(r.ok for r in results)
