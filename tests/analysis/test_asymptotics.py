"""Tests for the Table 5 asymptotic profiles."""

import math

import pytest

from repro.analysis import TABLE5, predicted_load_interval, profile


class TestLookup:
    def test_all_table5_rows_present(self):
        for name in ("majority", "hqs", "cwlog", "h-t-grid", "paths", "y", "h-triang"):
            assert name in TABLE5

    def test_case_insensitive(self):
        assert profile("Majority").name == "Majority"

    def test_unknown_raises(self):
        with pytest.raises(KeyError):
            profile("nonsense")


class TestFormulas:
    def test_majority(self):
        entry = profile("majority")
        assert entry.smallest_quorum(15) == 8
        assert entry.load(15) == 0.5
        assert entry.uniform_quorum_size

    def test_htriang(self):
        entry = profile("h-triang")
        assert entry.smallest_quorum(28) == pytest.approx(math.sqrt(56))
        assert entry.load(28) == pytest.approx(math.sqrt(2) / math.sqrt(28))
        assert entry.uniform_quorum_size

    def test_hqs_exponents(self):
        entry = profile("hqs")
        assert entry.smallest_quorum(27) == pytest.approx(27**0.63)
        assert entry.load(27) == pytest.approx(27**-0.37)

    def test_cwlog_logarithmic(self):
        entry = profile("cwlog")
        assert entry.load(1024) == pytest.approx(0.1)

    def test_only_htriang_has_uniform_sqrt_load(self):
        # Table 5's punchline: among the O(1/sqrt n)-load systems only
        # h-triang has a single quorum size.
        sqrt_load = ("h-t-grid", "paths", "y", "h-triang")
        uniform = [name for name in sqrt_load if TABLE5[name].uniform_quorum_size]
        assert uniform == ["h-triang"]


class TestLoadIntervals:
    def test_point_value(self):
        low, high = predicted_load_interval("h-triang", 28)
        assert low == high == pytest.approx(math.sqrt(2) / math.sqrt(28))

    def test_range_value(self):
        low, high = predicted_load_interval("paths", 25)
        assert low == pytest.approx(math.sqrt(2) / 5)
        assert high == pytest.approx(2 * math.sqrt(2) / 5)
        assert low < high

    def test_ordering_of_loads_at_100(self):
        # At n=100: optimal fpp first, h-triang next (the paper's
        # "almost optimal" claim), majority last.  The logarithmic-load
        # cwlog still beats h-grid's 2/sqrt(n) at this finite size.
        loads = {
            name: predicted_load_interval(name, 100)[0]
            for name in ("fpp", "h-triang", "h-grid", "cwlog", "hqs", "majority")
        }
        ordered = sorted(loads, key=loads.get)
        assert ordered == ["fpp", "h-triang", "cwlog", "hqs", "h-grid", "majority"]
        assert loads["h-triang"] == pytest.approx(loads["fpp"] * 2**0.5)
