"""Tests for the reliability polynomial / transversal counts (Prop. 3.1)."""

from math import comb

import pytest

from repro.analysis import reliability_polynomial
from repro.analysis.polynomial import popcount_table
from repro.core import AnalysisError, ExplicitQuorumSystem, Universe
from ..conftest import brute_force_failure_probability, tiny_majority


class TestTransversalCounts:
    def test_majority5_counts(self, maj5):
        poly = reliability_polynomial(maj5)
        # Failed sets of size i hitting every 3-subset: need >= 3 failures.
        assert poly.transversal_counts == (0, 0, 0, comb(5, 3), comb(5, 4), 1)

    def test_singleton_counts(self):
        system = ExplicitQuorumSystem(Universe.of_size(3), [{0}])
        poly = reliability_polynomial(system)
        # Transversals are exactly the failed sets containing element 0.
        assert poly.transversal_counts == (0, 1, 2, 1)

    def test_counts_sum(self, maj5):
        poly = reliability_polynomial(maj5)
        # a_i <= C(n, i) always; equality only above the failure threshold.
        for i, count in enumerate(poly.transversal_counts):
            assert 0 <= count <= comb(5, i)

    def test_minimum_transversal_size(self, maj5):
        assert reliability_polynomial(maj5).minimum_transversal_size == 3


class TestEvaluation:
    @pytest.mark.parametrize("p", (0.0, 0.1, 0.5, 0.9, 1.0))
    def test_matches_brute_force(self, maj5, p):
        poly = reliability_polynomial(maj5)
        assert poly.failure_probability(p) == pytest.approx(
            brute_force_failure_probability(maj5, p), abs=1e-12
        )

    def test_availability_complement(self, maj5):
        poly = reliability_polynomial(maj5)
        assert poly.availability(0.3) == pytest.approx(
            1.0 - poly.failure_probability(0.3)
        )

    def test_monotone_in_p(self, maj5):
        poly = reliability_polynomial(maj5)
        values = [poly.failure_probability(p / 20) for p in range(21)]
        assert values == sorted(values)
        assert values[0] == 0.0
        assert values[-1] == 1.0


class TestSelfComplementarity:
    def test_odd_majority_is_self_complementary(self, maj5):
        poly = reliability_polynomial(maj5)
        assert poly.is_self_complementary()
        assert poly.failure_probability(0.5) == pytest.approx(0.5)

    def test_even_majority_is_not(self):
        poly = reliability_polynomial(tiny_majority(4))
        assert not poly.is_self_complementary()

    def test_star_is_not(self):
        star = ExplicitQuorumSystem(Universe.of_size(4), [{0, 1}, {0, 2}, {0, 3}])
        assert not reliability_polynomial(star).is_self_complementary()


class TestHelpers:
    def test_popcount_table(self):
        table = popcount_table(4)
        assert table[0] == 0
        assert table[0b1011] == 3
        assert table[0b1111] == 4

    def test_large_universe_rejected(self):
        big = ExplicitQuorumSystem(Universe.of_size(30), [{0}], name="big")
        with pytest.raises(AnalysisError):
            reliability_polynomial(big)
