"""Tests for load computation (Def. 3.4, Prop. 3.3)."""

import math

import pytest

from repro.analysis import (
    load_lower_bound,
    load_lower_bounds,
    optimal_strategy,
    system_load,
    verify_load_bounds,
)
from repro.core import AnalysisError, ExplicitQuorumSystem, Universe
from repro.systems import FPPQuorumSystem, MajorityQuorumSystem
from ..conftest import tiny_majority


class TestLowerBounds:
    def test_bounds_formula(self, maj5):
        assert load_lower_bounds(maj5) == (3 / 5, 1 / 3)
        assert load_lower_bound(maj5) == 3 / 5

    def test_sqrt_n_bound(self):
        # max(c/n, 1/c) >= 1/sqrt(n) for every system (Prop. 3.3).
        for system in (tiny_majority(5), tiny_majority(7), FPPQuorumSystem(2)):
            assert load_lower_bound(system) >= 1 / math.sqrt(system.n) - 1e-12


class TestOptimalStrategy:
    def test_majority_load(self, maj5):
        strategy = optimal_strategy(maj5)
        assert strategy.induced_load() == pytest.approx(3 / 5, abs=1e-6)

    def test_star_load(self):
        star = ExplicitQuorumSystem(Universe.of_size(4), [{0, 1}, {0, 2}, {0, 3}])
        # Element 0 is in every quorum: load 1 regardless of strategy.
        assert optimal_strategy(star).induced_load() == pytest.approx(1.0, abs=1e-6)

    def test_fpp_matches_structural(self):
        fpp = FPPQuorumSystem(2)
        lp_load = optimal_strategy(fpp).induced_load()
        assert lp_load == pytest.approx(fpp.load_exact(), abs=1e-6)

    def test_restricted_support(self, maj5):
        quorums = list(maj5.minimal_quorums())[:2]
        strategy = optimal_strategy(maj5, quorums=quorums)
        assert set(strategy.quorums) <= set(quorums)
        # Fewer choices can only increase the achievable load.
        assert strategy.induced_load() >= 3 / 5 - 1e-9


class TestSystemLoadFrontend:
    def test_auto_uses_structural(self):
        majority = MajorityQuorumSystem.of_size(29)
        # 29 > enumeration cap: only the structural path can answer.
        assert system_load(majority) == pytest.approx(15 / 29)

    def test_lp_method(self, maj5):
        assert system_load(maj5, method="lp") == pytest.approx(0.6, abs=1e-6)

    def test_lower_bound_method(self, maj5):
        assert system_load(maj5, method="lower-bound") == pytest.approx(0.6)

    def test_unknown_method(self, maj5):
        with pytest.raises(AnalysisError):
            system_load(maj5, method="guess")

    def test_verify_load_bounds(self, maj5):
        assert verify_load_bounds(maj5, 0.6)
        assert not verify_load_bounds(maj5, 0.3)  # below the c/n bound
