"""Tests for failure-aware selection (§4.3) and the Byzantine extension (§7)."""

import numpy as np
import pytest

from repro.analysis import (
    availability_with_selector,
    boost,
    byzantine_profile,
    dissemination_threshold,
    find_live_quorum,
    is_b_dissemination,
    is_b_masking,
    live_quorums,
    masking_majority,
    masking_threshold,
    min_pairwise_intersection,
)
from repro.analysis.adaptive import FailureAwareSelector
from repro.core import AnalysisError, ConstructionError, Strategy
from repro.systems import (
    FPPQuorumSystem,
    HierarchicalTriangle,
    MajorityQuorumSystem,
)


class TestLiveQuorumSearch:
    def test_live_quorums_avoid_failed(self):
        system = HierarchicalTriangle(4)
        failed = {0, 1}
        for quorum in live_quorums(system, failed):
            assert not (quorum & failed)

    def test_find_live_quorum_smallest(self, maj5):
        quorum = find_live_quorum(maj5, {0})
        assert quorum is not None
        assert len(quorum) == 3
        assert 0 not in quorum

    def test_none_when_unavailable(self, maj5):
        assert find_live_quorum(maj5, {0, 1, 2}) is None

    def test_bad_preference(self, maj5):
        with pytest.raises(AnalysisError):
            find_live_quorum(maj5, set(), prefer="lucky")

    def test_live_search_matches_availability_event(self):
        # Exists live quorum <=> the alive set contains a quorum.
        system = HierarchicalTriangle(3)
        rng = np.random.default_rng(0)
        for _ in range(50):
            failed = {int(e) for e in np.flatnonzero(rng.random(system.n) < 0.4)}
            found = find_live_quorum(system, failed) is not None
            alive = set(system.universe.ids) - failed
            assert found == system.contains_quorum(alive)


class TestFailureAwareSelector:
    def test_no_suspicions_uses_base_strategy(self):
        system = HierarchicalTriangle(4)
        selector = FailureAwareSelector(Strategy.uniform(system))
        rng = np.random.default_rng(1)
        quorum = selector.pick(rng)
        assert quorum in Strategy.uniform(system).quorums
        assert selector.fallback_scans == 0

    def test_avoids_suspected(self):
        system = HierarchicalTriangle(4)
        selector = FailureAwareSelector(Strategy.uniform(system))
        selector.suspect(0)
        selector.suspect(1)
        rng = np.random.default_rng(2)
        for _ in range(20):
            quorum = selector.pick(rng)
            assert quorum is not None
            assert not (quorum & {0, 1})

    def test_returns_none_when_hopeless(self, maj5):
        selector = FailureAwareSelector(Strategy.uniform(maj5))
        for element in (0, 1, 2):
            selector.suspect(element)
        assert selector.pick(np.random.default_rng(0)) is None

    def test_unsuspect_and_clear(self, maj5):
        selector = FailureAwareSelector(Strategy.uniform(maj5))
        selector.suspect(0)
        selector.unsuspect(0)
        assert not selector.suspected
        selector.suspect(1)
        selector.clear()
        assert not selector.suspected

    def test_validation(self, maj5):
        with pytest.raises(AnalysisError):
            FailureAwareSelector(Strategy.uniform(maj5), max_resamples=0)

    def test_selector_success_matches_availability(self):
        # With a perfect failure detector the selector succeeds exactly
        # when the system is available (Def. 3.2).
        system = HierarchicalTriangle(4)
        rng = np.random.default_rng(3)
        rate = availability_with_selector(system, p=0.3, trials=3000, rng=rng)
        exact = 1.0 - system.failure_probability(0.3)
        assert rate == pytest.approx(exact, abs=0.03)

    def test_selector_beats_blind_sampling(self):
        system = HierarchicalTriangle(4)
        rng = np.random.default_rng(4)
        adaptive = availability_with_selector(system, p=0.3, trials=2000, rng=rng)
        blind = availability_with_selector(
            system, p=0.3, trials=2000, rng=rng, blind_attempts=1
        )
        assert adaptive > blind


class TestByzantineThresholds:
    def test_crash_systems_have_b0(self):
        for system in (
            HierarchicalTriangle(5),
            MajorityQuorumSystem.of_size(5),
            FPPQuorumSystem(2),
        ):
            overlap, dissemination, masking = byzantine_profile(system)
            assert overlap == 1
            assert dissemination == 0
            assert masking == 0
            assert is_b_dissemination(system, 0)
            assert is_b_masking(system, 0)
            assert not is_b_masking(system, 1)

    def test_thick_majority_threshold(self):
        # 4-of-5 majority-style system: pairwise intersections >= 3.
        import itertools

        from repro.core import ExplicitQuorumSystem, Universe

        quorums = [frozenset(c) for c in itertools.combinations(range(5), 4)]
        system = ExplicitQuorumSystem(Universe.of_size(5), quorums)
        assert min_pairwise_intersection(system) == 3
        assert dissemination_threshold(system) == 2
        assert masking_threshold(system) == 1

    def test_negative_b_rejected(self, maj5):
        with pytest.raises(AnalysisError):
            is_b_masking(maj5, -1)

    def test_single_quorum_system(self):
        from repro.core import ExplicitQuorumSystem, Universe

        system = ExplicitQuorumSystem(Universe.of_size(3), [{0, 1, 2}])
        assert min_pairwise_intersection(system) == 3


class TestBoost:
    def test_boost_reaches_requested_threshold(self):
        for b in (1, 2):
            boosted = boost(HierarchicalTriangle(3), b)
            assert boosted.n == 6 * (2 * b + 1)
            assert is_b_masking(boosted, b)
            boosted.verify_intersection()

    def test_boost_zero_is_isomorphic(self):
        base = HierarchicalTriangle(3)
        boosted = boost(base, 0)
        assert boosted.n == base.n
        assert boosted.num_minimal_quorums == base.num_minimal_quorums

    def test_boost_validation(self):
        with pytest.raises(ConstructionError):
            boost(HierarchicalTriangle(3), -1)

    def test_boost_quorum_size_scales(self):
        base = HierarchicalTriangle(3)
        boosted = boost(base, 1)
        assert boosted.smallest_quorum_size() == 3 * base.smallest_quorum_size()


class TestMaskingMajority:
    def test_threshold(self):
        system = masking_majority(9, 1)
        assert is_b_masking(system, 1)
        system.verify_intersection()  # n=9: cheap, validates the family

    def test_quorum_size(self):
        assert masking_majority(9, 1).smallest_quorum_size() == 6
        assert masking_majority(13, 2).smallest_quorum_size() == 9

    def test_minimum_n(self):
        with pytest.raises(ConstructionError):
            masking_majority(4, 1)
        with pytest.raises(ConstructionError):
            masking_majority(9, -1)

    def test_boosted_triangle_vs_masking_majority_size(self):
        # The §7 outlook, quantified: at b=1 the boosted triangle uses
        # quorums of 9 over 18 elements; masking majority over 18 needs
        # ceil(21/2) = 11 — the hierarchical route keeps quorums smaller.
        boosted = boost(HierarchicalTriangle(3), 1)
        baseline = masking_majority(boosted.n, 1)
        assert boosted.smallest_quorum_size() < baseline.smallest_quorum_size()
