"""Tests for the lattice frontier DP against independent brute force."""

import collections
import itertools

import pytest

from repro.analysis.lattice import (
    ConnectivityProblem,
    probability_all_satisfied,
    solve,
    uniform_survival,
)
from repro.core import AnalysisError


def grid_problem(rows, cols, requirements):
    """Square-grid connectivity problem with L/R/T/B border groups."""
    vertices = [(r, c) for c in range(cols) for r in range(rows)]
    adjacency = {
        (r, c): frozenset(
            (r + dr, c + dc)
            for dr, dc in ((1, 0), (-1, 0), (0, 1), (0, -1))
            if 0 <= r + dr < rows and 0 <= c + dc < cols
        )
        for (r, c) in vertices
    }
    groups = {
        "L": frozenset((r, 0) for r in range(rows)),
        "R": frozenset((r, cols - 1) for r in range(rows)),
        "T": frozenset((0, c) for c in range(cols)),
        "B": frozenset((rows - 1, c) for c in range(cols)),
    }
    return ConnectivityProblem(
        vertices=tuple(vertices),
        adjacency=adjacency,
        groups=groups,
        requirements=tuple(frozenset(r) for r in requirements),
    )


def brute_force(problem, survive):
    """Reference: enumerate all alive sets, BFS per component."""
    vertices = problem.vertices
    result = collections.defaultdict(float)
    for states in itertools.product([0, 1], repeat=len(vertices)):
        alive = {v for v, s in zip(vertices, states) if s}
        probability = 1.0
        for v, s in zip(vertices, states):
            probability *= survive[v] if s else 1 - survive[v]
        satisfied = set()
        seen = set()
        for start in alive:
            if start in seen:
                continue
            component = {start}
            queue = collections.deque([start])
            while queue:
                x = queue.popleft()
                for y in problem.adjacency.get(x, ()):  # type: ignore[arg-type]
                    if y in alive and y not in component:
                        component.add(y)
                        queue.append(y)
            seen |= component
            touched = {
                name
                for name, members in problem.groups.items()
                if component & members
            }
            for index, requirement in enumerate(problem.requirements):
                if requirement <= touched:
                    satisfied.add(index)
        result[frozenset(satisfied)] += probability
    return dict(result)


class TestAgainstBruteForce:
    @pytest.mark.parametrize("q", (0.3, 0.5, 0.9))
    def test_single_crossing_3x3(self, q):
        problem = grid_problem(3, 3, [{"L", "R"}])
        survive = uniform_survival(problem.vertices, q)
        expected = brute_force(problem, survive)
        got = solve(problem, survive)
        for key in set(expected) | set(got):
            assert got.get(key, 0.0) == pytest.approx(expected.get(key, 0.0), abs=1e-12)

    @pytest.mark.parametrize("q", (0.4, 0.8))
    def test_double_crossing_3x3(self, q):
        problem = grid_problem(3, 3, [{"L", "R"}, {"T", "B"}])
        survive = uniform_survival(problem.vertices, q)
        expected = brute_force(problem, survive)
        got = solve(problem, survive)
        for key in set(expected) | set(got):
            assert got.get(key, 0.0) == pytest.approx(expected.get(key, 0.0), abs=1e-12)

    def test_heterogeneous_survival(self):
        problem = grid_problem(2, 3, [{"L", "R"}])
        survive = {v: 0.2 + 0.1 * i for i, v in enumerate(problem.vertices)}
        expected = brute_force(problem, survive)
        got = solve(problem, survive)
        for key in set(expected) | set(got):
            assert got.get(key, 0.0) == pytest.approx(expected.get(key, 0.0), abs=1e-12)

    def test_three_side_requirement(self):
        problem = grid_problem(3, 3, [{"L", "R", "T"}])
        survive = uniform_survival(problem.vertices, 0.6)
        expected = brute_force(problem, survive)
        got = solve(problem, survive)
        for key in set(expected) | set(got):
            assert got.get(key, 0.0) == pytest.approx(expected.get(key, 0.0), abs=1e-12)


class TestDistributionProperties:
    def test_distribution_sums_to_one(self):
        problem = grid_problem(3, 4, [{"L", "R"}, {"T", "B"}])
        got = solve(problem, uniform_survival(problem.vertices, 0.5))
        assert sum(got.values()) == pytest.approx(1.0, abs=1e-12)

    def test_inclusion_exclusion(self):
        # P[H] + P[V] - P[H or V] == P[H and V].
        problem = grid_problem(3, 3, [{"L", "R"}, {"T", "B"}])
        dist = solve(problem, uniform_survival(problem.vertices, 0.7))
        p_both = dist.get(frozenset({0, 1}), 0.0)
        p_h = p_both + dist.get(frozenset({0}), 0.0)
        p_v = p_both + dist.get(frozenset({1}), 0.0)
        p_either = 1.0 - dist.get(frozenset(), 0.0)
        assert p_h + p_v - p_either == pytest.approx(p_both, abs=1e-12)

    def test_all_satisfied_helper(self):
        problem = grid_problem(2, 2, [{"L", "R"}])
        value = probability_all_satisfied(problem, uniform_survival(problem.vertices, 1.0))
        assert value == pytest.approx(1.0)

    def test_certain_death(self):
        problem = grid_problem(2, 2, [{"L", "R"}])
        value = probability_all_satisfied(problem, uniform_survival(problem.vertices, 0.0))
        assert value == pytest.approx(0.0)


class TestValidation:
    def test_duplicate_vertices_rejected(self):
        with pytest.raises(AnalysisError):
            ConnectivityProblem(
                vertices=(1, 1),
                adjacency={},
                groups={},
                requirements=(),
            )

    def test_unknown_group_member_rejected(self):
        with pytest.raises(AnalysisError):
            ConnectivityProblem(
                vertices=(1, 2),
                adjacency={},
                groups={"L": frozenset({99})},
                requirements=(),
            )

    def test_unknown_requirement_group_rejected(self):
        with pytest.raises(AnalysisError):
            ConnectivityProblem(
                vertices=(1, 2),
                adjacency={},
                groups={"L": frozenset({1})},
                requirements=(frozenset({"X"}),),
            )

    def test_bad_survival_probability_rejected(self):
        problem = grid_problem(2, 2, [{"L", "R"}])
        survive = uniform_survival(problem.vertices, 0.5)
        survive[(0, 0)] = 1.5
        with pytest.raises(AnalysisError):
            solve(problem, survive)
