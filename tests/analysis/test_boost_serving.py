"""boost() as the route from the paper's crash-model constructions to a
Byzantine-tolerant serving deployment: the boosted hierarchical systems
must reach the requested masking threshold AND pass the coordinator's
startup validation (satellite of the masking-read serving path)."""

import pytest

from repro.analysis.byzantine import (
    boost,
    masking_threshold,
    validate_masking,
)
from repro.core.errors import AnalysisError, ServiceError
from repro.service import Coordinator, InProcessTransport, make_replicas
from repro.systems import HierarchicalGrid, HierarchicalTriangle


def startup(system, b):
    replicas = make_replicas(system)
    transport = InProcessTransport(replicas, seed=0)
    return Coordinator(system, transport, seed=0, byzantine_b=b)


class TestBoostedThresholds:
    @pytest.mark.parametrize("b", [1, 2])
    def test_boosted_triangle_reaches_requested_b(self, b):
        base = HierarchicalTriangle.of_size(6)
        assert masking_threshold(base) < b
        boosted = boost(base, b)
        assert masking_threshold(boosted) >= b
        assert validate_masking(boosted, b) >= b
        assert boosted.n == base.n * (2 * b + 1)

    def test_boosted_grid_reaches_requested_b(self):
        base = HierarchicalGrid.halving(4, 4)
        assert masking_threshold(base) < 1
        boosted = boost(base, 1)
        assert masking_threshold(boosted) >= 1
        assert validate_masking(boosted, 1) >= 1

    def test_validate_masking_names_the_fix(self):
        base = HierarchicalTriangle.of_size(6)
        with pytest.raises(AnalysisError) as info:
            validate_masking(base, 1)
        assert "boost(system, 1)" in str(info.value)

    def test_validate_masking_rejects_negative_b(self):
        with pytest.raises(AnalysisError):
            validate_masking(HierarchicalTriangle.of_size(6), -1)


class TestServingStartup:
    def test_boosted_triangle_passes_coordinator_validation(self):
        boosted = boost(HierarchicalTriangle.of_size(6), 1)
        coordinator = startup(boosted, 1)
        assert coordinator.byzantine_b == 1

    def test_boosted_grid_passes_coordinator_validation(self):
        boosted = boost(HierarchicalGrid.halving(4, 4), 1)
        startup(boosted, 1)  # must not raise

    def test_base_systems_are_rejected_at_startup(self):
        for base in (
            HierarchicalTriangle.of_size(6),
            HierarchicalGrid.halving(4, 4),
        ):
            with pytest.raises(ServiceError) as info:
                startup(base, 1)
            assert "boost" in str(info.value)
