"""Exact-rational certification of the reproduction.

These tests re-derive key table entries over ``fractions.Fraction`` —
no floating point anywhere — and check that the exact rational rounds to
the paper's printed six decimals.  This removes any possibility that the
float-based agreement was accidental.
"""

from fractions import Fraction

import pytest

from repro.analysis.exact import (
    exact_failure_enumeration,
    exact_failure_hgrid,
    exact_failure_hqs,
    exact_failure_htriangle,
    exact_failure_majority,
    exact_failure_wall,
    rounds_to,
)
from repro.core import AnalysisError
from repro.systems import (
    CrumblingWallQuorumSystem,
    HierarchicalGrid,
    HierarchicalTriangle,
)
from repro.systems.hqs import balanced_spec


class TestRoundsTo:
    def test_exact_match(self):
        assert rounds_to(Fraction(1, 2), "0.500000")

    def test_rounding(self):
        assert rounds_to(Fraction(123456499, 10**12), "0.000123")
        assert not rounds_to(Fraction(2, 10), "0.100000")

    def test_tie_tolerated(self):
        assert rounds_to(Fraction(15, 10**7), "0.000001")
        assert rounds_to(Fraction(15, 10**7), "0.000002")


class TestMajorityExact:
    @pytest.mark.parametrize(
        "p, printed",
        [("1/10", "0.000034"), ("1/5", "0.004240"), ("3/10", "0.050013"), ("1/2", "0.500000")],
    )
    def test_table2_majority(self, p, printed):
        assert rounds_to(exact_failure_majority(15, p), printed)

    def test_half_is_exactly_half(self):
        assert exact_failure_majority(15, "1/2") == Fraction(1, 2)
        assert exact_failure_majority(27, "1/2") == Fraction(1, 2)

    def test_matches_float_engine(self):
        from repro.systems import MajorityQuorumSystem

        exact = exact_failure_majority(9, "1/4")
        floatval = MajorityQuorumSystem.of_size(9).failure_probability(0.25)
        assert float(exact) == pytest.approx(floatval, abs=1e-15)


class TestWallExact:
    @pytest.mark.parametrize(
        "p, printed",
        [("1/10", "0.001639"), ("1/5", "0.021787"), ("3/10", "0.099915"), ("1/2", "0.500000")],
    )
    def test_table2_cwlog14(self, p, printed):
        widths = CrumblingWallQuorumSystem.cwlog(14).widths
        assert rounds_to(exact_failure_wall(widths, p), printed)

    def test_cwlog_half_exactly_half(self):
        for n in (14, 29):
            widths = CrumblingWallQuorumSystem.cwlog(n).widths
            assert exact_failure_wall(widths, "1/2") == Fraction(1, 2)


class TestHQSExact:
    @pytest.mark.parametrize(
        "p, printed",
        [("1/10", "0.000210"), ("1/5", "0.009567"), ("3/10", "0.070946")],
    )
    def test_table2_hqs15(self, p, printed):
        assert rounds_to(exact_failure_hqs(balanced_spec([5, 3]), p), printed)

    def test_table3_hqs27_rounding_slip(self):
        # The p=0.3 entry where the paper prints 0.039626: the exact
        # rational is 0.0396253...; the paper's last digit is off by one
        # ulp of print precision (our float engine said the same).
        exact = exact_failure_hqs(balanced_spec([3, 3, 3]), "3/10")
        assert rounds_to(exact, "0.039625")
        assert not rounds_to(exact, "0.039626")
        assert abs(exact - Fraction("0.039626")) < Fraction(1, 10**6)


class TestHierarchicalExact:
    def test_table1_hgrid_4x4(self):
        system = HierarchicalGrid.halving(4, 4)
        for p, printed in [("1/10", "0.005799"), ("1/5", "0.069318"),
                           ("3/10", "0.243795"), ("1/2", "0.746628")]:
            value = exact_failure_hgrid(system, p)
            assert isinstance(value, Fraction)
            assert rounds_to(value, printed)

    def test_table2_htriang15(self):
        system = HierarchicalTriangle(5)
        for p, printed in [("1/10", "0.000677"), ("1/5", "0.016577"),
                           ("3/10", "0.090712")]:
            assert rounds_to(exact_failure_htriangle(system, p), printed)

    def test_htriang_self_duality_exact(self):
        # F(1/2) = 1/2 exactly, as a rational identity.
        for t in (2, 3, 5, 7):
            system = HierarchicalTriangle(t)
            assert exact_failure_htriangle(system, "1/2") == Fraction(1, 2)

    def test_hgrid_not_self_dual_exact(self):
        system = HierarchicalGrid.halving(4, 4)
        assert exact_failure_hgrid(system, "1/2") != Fraction(1, 2)


class TestEnumerationExact:
    def test_matches_structural(self):
        system = HierarchicalTriangle(4)
        for p in ("1/10", "2/5"):
            assert exact_failure_enumeration(system, p) == exact_failure_htriangle(
                system, p
            )

    def test_size_guard(self):
        with pytest.raises(AnalysisError):
            exact_failure_enumeration(HierarchicalTriangle(6), "1/10")
