"""Tests for construction-space search."""

import pytest

from repro.analysis.optimization import (
    best_grid_shape,
    best_triangle_growth,
    best_wall,
    grid_shapes,
    partitions_nondecreasing,
)
from repro.core import AnalysisError
from repro.systems import CrumblingWallQuorumSystem, HierarchicalTriangle


class TestPartitions:
    def test_small_counts(self):
        assert len(list(partitions_nondecreasing(4))) == 5
        assert len(list(partitions_nondecreasing(7))) == 15

    def test_nondecreasing(self):
        for widths in partitions_nondecreasing(8):
            assert list(widths) == sorted(widths)
            assert sum(widths) == 8

    def test_max_parts(self):
        for widths in partitions_nondecreasing(8, max_parts=2):
            assert len(widths) <= 2


class TestBestWall:
    def test_beats_cwlog_at_its_own_size(self):
        # CWlog is the log-quorum trade-off, not the availability optimum:
        # the search finds strictly better walls at n = 14.
        ranked = best_wall(14, 0.1, top=3)
        best_widths, best_value = ranked[0]
        cwlog = CrumblingWallQuorumSystem.cwlog(14).failure_probability_exact(0.1)
        assert best_value < cwlog
        assert sum(best_widths) == 14

    def test_ranking_sorted(self):
        ranked = best_wall(10, 0.2, top=10)
        values = [value for _, value in ranked]
        assert values == sorted(values)

    def test_single_row_is_bad(self):
        ranked = best_wall(8, 0.2, top=1000)
        worst_widths, _ = ranked[-1]
        # The all-in-one-row wall (single quorum = everything) ranks last.
        assert worst_widths == (8,)

    def test_guards(self):
        with pytest.raises(AnalysisError):
            best_wall(50, 0.1)
        with pytest.raises(AnalysisError):
            best_wall(10, 0.0)


class TestBestGridShape:
    def test_shapes(self):
        assert (4, 6) in grid_shapes(24)
        assert (5, 5) in grid_shapes(24, allow_near=True)

    def test_htgrid_prefers_more_lines_than_columns(self):
        # The §4.3 observation, rediscovered by search: at 24 elements and
        # p = 0.1 the best h-T-grid shape has more lines than columns.
        ranked = best_grid_shape(24, 0.1, system="h-t-grid", top=3)
        (rows, cols), _ = ranked[0]
        assert rows > cols

    def test_hgrid_search_runs_large(self):
        ranked = best_grid_shape(64, 0.1, system="h-grid", top=2)
        assert ranked[0][1] < ranked[1][1] or ranked[0][1] == ranked[1][1]

    def test_flat_grid_family(self):
        ranked = best_grid_shape(16, 0.2, system="grid", top=2)
        assert all(rows * cols == 16 for (rows, cols), _ in ranked)

    def test_guards(self):
        with pytest.raises(AnalysisError):
            best_grid_shape(24, 0.1, system="mystery")
        with pytest.raises(AnalysisError):
            best_grid_shape(36, 0.1, system="h-t-grid")
        with pytest.raises(AnalysisError):
            best_grid_shape(7, 0.1)  # prime: only degenerate shapes


class TestTriangleGrowth:
    def test_ranking(self):
        triangle = HierarchicalTriangle(5, subgrid="flat")
        winner, outcomes = best_triangle_growth(triangle, 0.1)
        assert winner in outcomes
        assert set(outcomes) == {"t1", "t2", "grid"}
        for added, value, gain in outcomes.values():
            assert added > 0
            assert value < triangle.failure_probability(0.1)
            assert gain > 0

    def test_winner_has_best_gain(self):
        triangle = HierarchicalTriangle(4, subgrid="flat")
        winner, outcomes = best_triangle_growth(triangle, 0.2)
        assert outcomes[winner][2] == max(gain for _, _, gain in outcomes.values())
