"""Tests for rare-event (failure-biased) Monte Carlo."""

import pytest

from repro.analysis.rare import failure_probability_rare
from repro.core import AnalysisError
from repro.systems import HierarchicalTriangle, MajorityQuorumSystem, YQuorumSystem


class TestEstimator:
    def test_matches_exact_in_the_tail(self):
        # h-triang(21) at p=0.05: F ~ 2.7e-6 — invisible to naive MC with
        # this budget, but the biased estimator nails it.
        system = HierarchicalTriangle(6)
        p = 0.05
        exact = system.failure_probability(p)
        estimate = failure_probability_rare(system, p, samples=200_000, seed=1)
        assert estimate.value == pytest.approx(exact, rel=0.2)
        assert estimate.hit_rate > 0.01  # the bias actually finds failures

    def test_matches_exact_moderate_p(self):
        system = MajorityQuorumSystem.of_size(9)
        p = 0.15
        exact = system.failure_probability(p)
        estimate = failure_probability_rare(system, p, samples=150_000, seed=2)
        assert estimate.value == pytest.approx(exact, rel=0.1)

    def test_unbiasedness_when_no_bias(self):
        # biased_p == p degenerates to naive MC.
        system = MajorityQuorumSystem.of_size(5)
        estimate = failure_probability_rare(
            system, 0.3, biased_p=0.3, samples=100_000, seed=3
        )
        exact = system.failure_probability(0.3)
        assert estimate.value == pytest.approx(exact, rel=0.05)

    def test_variance_reduction(self):
        # At small p, the biased estimator's relative error beats the
        # naive estimator's (which mostly sees zero failures).
        system = YQuorumSystem(5)
        p = 0.04
        biased = failure_probability_rare(system, p, samples=100_000, seed=4)
        naive = failure_probability_rare(
            system, p, biased_p=p, samples=100_000, seed=4
        )
        exact = system.failure_probability(p)
        assert abs(biased.value - exact) < abs(naive.value - exact) + exact
        assert biased.hit_rate > naive.hit_rate

    def test_reproducible(self):
        system = HierarchicalTriangle(4)
        first = failure_probability_rare(system, 0.1, samples=10_000, seed=5)
        second = failure_probability_rare(system, 0.1, samples=10_000, seed=5)
        assert first.value == second.value

    def test_relative_error(self):
        system = HierarchicalTriangle(4)
        estimate = failure_probability_rare(system, 0.1, samples=50_000, seed=6)
        assert estimate.relative_error() < 0.2


class TestValidation:
    def test_bad_p(self):
        system = MajorityQuorumSystem.of_size(5)
        with pytest.raises(AnalysisError):
            failure_probability_rare(system, 0.0)
        with pytest.raises(AnalysisError):
            failure_probability_rare(system, 1.0)

    def test_bad_biased_p(self):
        system = MajorityQuorumSystem.of_size(5)
        with pytest.raises(AnalysisError):
            failure_probability_rare(system, 0.3, biased_p=0.1)

    def test_bad_samples(self):
        system = MajorityQuorumSystem.of_size(5)
        with pytest.raises(AnalysisError):
            failure_probability_rare(system, 0.3, samples=0)
