"""Tests for the read/write capacity LP and the read-quorum families.

Two kinds of guarantees:

* **Safety** — every construction-provided read quorum intersects every
  minimal (write) quorum, on the base families and on §5-grown
  h-triangles alike; the LP's output pair re-checks the invariant at
  construction, so a successful solve is itself a proof.
* **Capacity** — the LP's optimum beats the unified write-legal optimum
  on read-heavy workloads for grid-shaped families (reads are row
  covers, a fraction of a full quorum), and honestly reports ~no gain
  for self-dual systems (majority, h-triangle) whose read quorums are
  as large as their write quorums.
"""

import pytest

from repro.analysis import (
    optimal_strategy,
    read_quorums_of,
    read_write_optimal,
)
from repro.analysis.byzantine import masking_majority
from repro.analysis.capacity import read_write_capacity
from repro.core.errors import AnalysisError
from repro.core.rwstrategy import ReadWriteStrategy
from repro.systems import (
    GridQuorumSystem,
    HierarchicalGrid,
    HierarchicalTGrid,
    HierarchicalTriangle,
    MajorityQuorumSystem,
)


def assert_two_intersection(system, reads):
    writes = list(system.minimal_quorums())
    for read_quorum in reads:
        for write_quorum in writes:
            assert read_quorum & write_quorum, (
                f"{system.system_name}: read {sorted(read_quorum)} misses"
                f" write {sorted(write_quorum)}"
            )


class TestReadQuorumFamilies:
    @pytest.mark.parametrize(
        "system",
        [
            GridQuorumSystem(3, 4),
            GridQuorumSystem(4, 4),
            HierarchicalGrid.halving(4, 4),
            HierarchicalTGrid.halving(4, 4),
            HierarchicalTriangle.of_size(15),
        ],
        ids=lambda s: s.system_name,
    )
    def test_reads_intersect_every_write_quorum(self, system):
        reads = read_quorums_of(system)
        assert reads
        assert_two_intersection(system, reads)

    def test_grown_triangles_keep_the_invariant(self):
        # §5 growth is defined on flat sub-grids only.
        base = HierarchicalTriangle.of_size(15, subgrid="flat")
        for construction in ("t1", "t2", "grid"):
            grown = base.grown(construction)
            assert_two_intersection(grown, read_quorums_of(grown))

    def test_grid_reads_are_row_covers(self):
        system = GridQuorumSystem(4, 4)
        reads = read_quorums_of(system)
        # One element per row: strictly smaller than any quorum.
        assert all(len(q) == 4 for q in reads)
        assert system.smallest_quorum_size() > 4

    def test_dual_fallback_for_systems_without_a_hook(self):
        system = MajorityQuorumSystem.of_size(5)
        reads = read_quorums_of(system)
        # Majority is self-dual: the fallback returns majorities again.
        assert sorted(map(sorted, reads)) == sorted(
            map(sorted, system.minimal_quorums())
        )


class TestCapacityLP:
    def test_grid_read_heavy_capacity_beats_unified(self):
        system = GridQuorumSystem(4, 4)
        unified_capacity = 1.0 / optimal_strategy(system).induced_load()
        result = read_write_capacity(system, read_fraction=0.9)
        assert result.capacity >= 1.3 * unified_capacity
        assert isinstance(result.strategy, ReadWriteStrategy)
        assert result.strategy.is_split
        # The result's load is the strategy's own induced load.
        assert result.load == pytest.approx(
            result.strategy.induced_load(0.9), rel=1e-6
        )

    def test_capacity_grows_with_read_fraction(self):
        system = HierarchicalGrid.halving(4, 4)
        capacities = [
            read_write_capacity(system, read_fraction=fr).capacity
            for fr in (0.5, 0.9, 0.99)
        ]
        assert capacities[0] < capacities[1] < capacities[2]

    def test_self_dual_family_gains_nothing(self):
        system = MajorityQuorumSystem.of_size(5)
        unified_capacity = 1.0 / optimal_strategy(system).induced_load()
        result = read_write_capacity(system, read_fraction=0.99)
        assert result.capacity == pytest.approx(unified_capacity, rel=1e-6)

    def test_mixture_workload(self):
        system = GridQuorumSystem(4, 4)
        result = read_write_capacity(system, read_fraction={0.5: 1.0, 0.9: 3.0})
        assert set(result.per_fraction_loads) == {0.5, 0.9}
        expected = sum(
            weight * result.per_fraction_loads[fr]
            for fr, weight in result.read_fraction.items()
        )
        assert result.load == pytest.approx(expected, rel=1e-9)
        # Mixture weights arrive normalised.
        assert sum(result.read_fraction.values()) == pytest.approx(1.0)

    def test_f_resilience_costs_capacity(self):
        system = MajorityQuorumSystem.of_size(5)
        base = read_write_capacity(system, read_fraction=0.9)
        resilient = read_write_capacity(system, read_fraction=0.9, f=1)
        assert resilient.f == 1
        assert resilient.capacity <= base.capacity + 1e-9
        # Every weighted read quorum must still intersect all writes
        # after any single crash — spot check via the pair invariant.
        strategy = resilient.strategy
        for read_quorum in strategy.reads.quorums:
            for gone in read_quorum:
                rest = read_quorum - {gone}
                assert all(rest & w for w in strategy.writes.quorums)

    def test_min_intersection_falls_back_to_write_family(self):
        system = masking_majority(5, 1)
        result = read_write_capacity(system, read_fraction=0.9, min_intersection=3)
        assert result.unified_read_fallback
        assert result.strategy.min_read_write_intersection() >= 3

    def test_min_intersection_unreachable_raises(self):
        system = MajorityQuorumSystem.of_size(3)
        with pytest.raises(AnalysisError, match="pairwise intersection"):
            read_write_capacity(system, read_fraction=0.9, min_intersection=3)

    def test_heterogeneous_capacities_shift_weight(self):
        system = GridQuorumSystem(2, 2)
        slow = [1.0, 1.0, 1.0, 0.05]
        fast = read_write_capacity(
            system, read_fraction=0.9, read_capacity=slow, write_capacity=slow
        )
        uniform = read_write_capacity(system, read_fraction=0.9)
        loads = fast.strategy.element_loads(0.9)
        # The crippled element must not be the busiest one.
        assert loads[3] < loads.max() + 1e-12
        assert fast.capacity < uniform.capacity

    def test_input_validation(self):
        system = MajorityQuorumSystem.of_size(3)
        with pytest.raises(AnalysisError):
            read_write_capacity(system, f=-1)
        with pytest.raises(AnalysisError):
            read_write_capacity(system, min_intersection=0)
        with pytest.raises(AnalysisError):
            read_write_capacity(system, read_fraction=1.5)
        with pytest.raises(AnalysisError):
            read_write_capacity(system, read_fraction={})
        with pytest.raises(AnalysisError):
            read_write_capacity(system, read_capacity=0.0)

    def test_to_dict_is_json_shaped(self):
        result = read_write_capacity(
            GridQuorumSystem(3, 3), read_fraction=0.9
        )
        blob = result.to_dict()
        assert blob["capacity"] == pytest.approx(result.capacity)
        assert blob["read_quorum_count"] == result.read_quorum_count
        assert blob["unified_read_fallback"] is False
        assert "0.9" in blob["read_fraction"]

    def test_read_write_optimal_returns_the_pair(self):
        system = GridQuorumSystem(3, 3)
        strategy = read_write_optimal(system, read_fraction=0.9)
        assert isinstance(strategy, ReadWriteStrategy)
        assert strategy.is_split
