"""Tests for the optimality bounds (Prop. 3.2) and crossover analysis."""

import pytest

from repro.analysis import (
    availability_gap,
    capacity,
    capacity_upper_bound,
    dominance_interval,
    find_crossover,
    optimal_failure_probability,
)
from repro.analysis.bounds import failure_probability_floor, probe_envelope
from repro.core import AnalysisError
from repro.systems import (
    GridQuorumSystem,
    HierarchicalTGrid,
    HierarchicalTriangle,
    MajorityQuorumSystem,
    SingletonQuorumSystem,
    YQuorumSystem,
)


class TestEnvelope:
    def test_majority_attains_envelope_below_half(self):
        for n in (5, 15):
            system = MajorityQuorumSystem.of_size(n)
            for p in (0.1, 0.3, 0.49):
                assert system.failure_probability(p) == pytest.approx(
                    optimal_failure_probability(n, p), abs=1e-12
                )

    def test_singleton_attains_envelope_above_half(self):
        system = SingletonQuorumSystem.of_size(7)
        for p in (0.5, 0.7, 0.9):
            assert system.failure_probability(p) == pytest.approx(
                optimal_failure_probability(7, p)
            )

    def test_even_n_uses_odd_majority(self):
        # Adding a 16th element cannot beat the 15-element majority.
        assert optimal_failure_probability(16, 0.2) == pytest.approx(
            optimal_failure_probability(15, 0.2)
        )

    @pytest.mark.parametrize(
        "system",
        [
            HierarchicalTriangle(5),
            HierarchicalTGrid.halving(4, 4),
            YQuorumSystem(5),
            GridQuorumSystem(4, 4),
        ],
        ids=lambda s: s.system_name,
    )
    def test_every_system_respects_the_envelope(self, system):
        for p in (0.1, 0.3, 0.5):
            assert availability_gap(system, p) >= -1e-12

    def test_validation(self):
        with pytest.raises(AnalysisError):
            optimal_failure_probability(5, 1.5)
        with pytest.raises(AnalysisError):
            optimal_failure_probability(0, 0.2)

    def test_floor_below_actual(self):
        system = HierarchicalTriangle(4)
        for p in (0.2, 0.4):
            assert failure_probability_floor(system, p) <= system.failure_probability(p)

    def test_probe_envelope_monotone(self):
        samples = probe_envelope(9, points=11)
        values = [v for _, v in samples]
        assert values == sorted(values)
        with pytest.raises(AnalysisError):
            probe_envelope(9, points=1)


class TestCapacity:
    def test_htriang_capacity(self):
        # Load 1/3 -> the 15 elements jointly sustain 3 units of work.
        assert capacity(HierarchicalTriangle(5)) == pytest.approx(3.0)

    def test_capacity_bounded(self):
        for system in (HierarchicalTriangle(5), MajorityQuorumSystem.of_size(5)):
            assert capacity(system) <= capacity_upper_bound(system) + 1e-9

    def test_capacity_grows_with_n_for_htriang(self):
        small = capacity(HierarchicalTriangle(5))
        large = capacity(HierarchicalTriangle(7))
        assert large > small


class TestCrossover:
    def test_singleton_vs_majority_cross_at_half(self):
        singleton = SingletonQuorumSystem.of_size(5)
        majority = MajorityQuorumSystem.of_size(5)
        crossing = find_crossover(singleton, majority, low=0.05, high=0.95)
        assert crossing == pytest.approx(0.5, abs=1e-6)

    def test_dominated_pair_has_no_crossover(self):
        hgrid = HierarchicalTGrid.halving(4, 4)
        triangle = HierarchicalTriangle(5)
        # h-triang dominates the 4x4 h-T-grid over (0, 1/2).
        assert find_crossover(triangle, hgrid) is None

    def test_grid_vs_majority_crossover_region(self):
        # The flat grid beats nothing at moderate p, but crosses the
        # singleton somewhere below 1/2.
        grid = GridQuorumSystem(4, 4)
        singleton = SingletonQuorumSystem.of_size(16)
        crossing = find_crossover(grid, singleton, low=0.01, high=0.49)
        assert crossing is not None
        # On the left of the crossing the grid is better; right, worse.
        assert grid.failure_probability(crossing - 0.05) < singleton.failure_probability(
            crossing - 0.05
        )
        assert grid.failure_probability(crossing + 0.05) > singleton.failure_probability(
            crossing + 0.05
        )

    def test_interval_validation(self):
        a = SingletonQuorumSystem.of_size(2)
        with pytest.raises(AnalysisError):
            find_crossover(a, a, low=0.9, high=0.1)

    def test_dominance_interval(self):
        triangle = HierarchicalTriangle(5)
        y = YQuorumSystem(5)
        samples = dominance_interval(triangle, y, points=10)
        assert all(better for _, better in samples[:-1])  # tri wins below 1/2
        with pytest.raises(AnalysisError):
            dominance_interval(triangle, y, points=1)
