"""Additional coverage for analysis front-end edge paths."""

import pytest

from repro.analysis import (
    failure_probability,
    failure_probability_heterogeneous,
    failure_probability_montecarlo,
    optimal_strategy,
)
from repro.analysis.load import MAX_LP_QUORUMS
from repro.core import AnalysisError, ExplicitQuorumSystem, Universe
from repro.systems import HierarchicalTriangle, MajorityQuorumSystem


class TestFrontendMonteCarlo:
    def test_montecarlo_method_via_frontend(self):
        system = MajorityQuorumSystem.of_size(7)
        value = failure_probability(system, 0.3, method="montecarlo",
                                    samples=50_000, seed=1)
        exact = system.failure_probability_exact(0.3)
        assert value == pytest.approx(exact, abs=0.01)

    def test_montecarlo_heterogeneous(self):
        system = MajorityQuorumSystem.of_size(5)
        per_element = [0.1, 0.2, 0.3, 0.4, 0.5]
        estimate = failure_probability_montecarlo(
            system, 0.0, per_element=per_element, samples=100_000, seed=2
        )
        exact = 1.0 - system.availability_heterogeneous(
            [1 - p for p in per_element]
        )
        assert estimate.contains(exact)

    def test_heterogeneous_frontend_montecarlo_method(self):
        system = MajorityQuorumSystem.of_size(5)
        value = failure_probability_heterogeneous(
            system, [0.2] * 5, method="montecarlo"
        )
        assert value == pytest.approx(system.failure_probability(0.2), abs=0.01)

    def test_heterogeneous_unknown_method(self):
        system = MajorityQuorumSystem.of_size(5)
        with pytest.raises(AnalysisError):
            failure_probability_heterogeneous(system, [0.2] * 5, method="nope")


class TestLPGuards:
    def test_lp_quorum_cap(self):
        system = HierarchicalTriangle(4)
        # Simulate an enormous support by shrinking the cap temporarily.
        import repro.analysis.load as load_module

        original = load_module.MAX_LP_QUORUMS
        load_module.MAX_LP_QUORUMS = 5
        try:
            with pytest.raises(AnalysisError):
                optimal_strategy(system)
        finally:
            load_module.MAX_LP_QUORUMS = original

    def test_cap_constant_reasonable(self):
        assert MAX_LP_QUORUMS >= 10_000


class TestExplicitSystemMetrics:
    def test_quorum_sizes_sorted(self):
        system = ExplicitQuorumSystem(
            Universe.of_size(5), [{0, 1, 2}, {2, 3}, {0, 2, 3, 4}]
        )
        assert system.quorum_sizes() == (2, 3)  # dominated quorum removed
        assert not system.has_uniform_quorum_size()

    def test_availability_heterogeneous_default_validation(self):
        system = ExplicitQuorumSystem(Universe.of_size(3), [{0, 1}, {1, 2}])
        from repro.core import ConstructionError

        with pytest.raises(ConstructionError):
            system.availability_heterogeneous([0.5])
