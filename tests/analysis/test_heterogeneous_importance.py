"""Tests for heterogeneous availability and Birnbaum importance."""

import numpy as np
import pytest

from repro.analysis.importance import (
    birnbaum_importance,
    importance_identity_check,
    importance_profile,
    improvement_potential,
    most_critical_elements,
)
from repro.core import AnalysisError, ConstructionError, ExplicitQuorumSystem, Universe
from repro.core.quorum_system import QuorumSystem
from repro.systems import (
    CrumblingWallQuorumSystem,
    GridQuorumSystem,
    HQSQuorumSystem,
    HierarchicalGrid,
    HierarchicalTriangle,
    MajorityQuorumSystem,
    TreeQuorumSystem,
)

STRUCTURED = [
    CrumblingWallQuorumSystem.cwlog(14),
    GridQuorumSystem(3, 3),
    HQSQuorumSystem.balanced([3, 3]),
    HierarchicalGrid.halving(4, 4),
    HierarchicalTriangle(5),
    MajorityQuorumSystem.of_size(9),
    TreeQuorumSystem(2),
]


class TestHeterogeneousAvailability:
    @pytest.mark.parametrize("system", STRUCTURED, ids=lambda s: s.system_name)
    def test_constant_probabilities_match_iid(self, system):
        for p in (0.1, 0.35):
            het = system.availability_heterogeneous([1.0 - p] * system.n)
            assert het == pytest.approx(1.0 - system.failure_probability(p), abs=1e-12)

    @pytest.mark.parametrize("system", STRUCTURED, ids=lambda s: s.system_name)
    def test_random_probabilities_match_generic_engine(self, system):
        rng = np.random.default_rng(7)
        survive = list(rng.uniform(0.4, 0.99, system.n))
        structured = system.availability_heterogeneous(survive)
        generic = QuorumSystem.availability_heterogeneous(system, survive)
        assert structured == pytest.approx(generic, abs=1e-10)

    def test_wrong_length_rejected(self):
        system = HierarchicalTriangle(4)
        with pytest.raises(ConstructionError):
            system.availability_heterogeneous([0.5, 0.5])

    def test_all_dead_and_all_alive(self):
        system = HierarchicalTriangle(4)
        assert system.availability_heterogeneous([0.0] * system.n) == pytest.approx(0.0)
        assert system.availability_heterogeneous([1.0] * system.n) == pytest.approx(1.0)

    def test_big_structured_systems_work(self):
        # Heterogeneous availability at n=105 — generic engines cannot go
        # there, the structural recursion can.
        system = HierarchicalTriangle(14)
        rng = np.random.default_rng(0)
        value = system.availability_heterogeneous(list(rng.uniform(0.85, 0.95, 105)))
        assert 0.99 < value <= 1.0


class TestBirnbaumImportance:
    def test_majority_has_uniform_importance(self):
        profile = importance_profile(MajorityQuorumSystem.of_size(7), 0.2)
        assert np.allclose(profile, profile[0])

    def test_htriang_uniform_load_but_nonuniform_criticality(self):
        # A subtle structural fact: the §5 strategy loads every element
        # equally (t/n), yet availability-wise the elements are *not*
        # interchangeable — the T1 (top) elements appear in the most
        # quorum patterns and carry the highest Birnbaum importance.
        system = HierarchicalTriangle(4)
        profile = importance_profile(system, 0.2)
        t1_elements = [system.universe.id_of((r, c)) for r in range(2) for c in range(r + 1)]
        others = [e for e in system.universe.ids if e not in t1_elements]
        assert min(profile[t1_elements]) > max(profile[others])
        # ... while the load profile is perfectly flat.
        loads = system.balanced_load_profile().element_loads
        assert np.allclose(loads, loads[0])

    def test_star_center_dominates(self):
        star = ExplicitQuorumSystem(
            Universe.of_size(4), [{0, 1}, {0, 2}, {0, 3}], name="star"
        )
        profile = importance_profile(star, 0.2)
        assert profile[0] > profile[1]
        assert most_critical_elements(star, 0.2, count=1)[0][0] == 0

    def test_wall_bottom_rows_matter_more(self):
        # In a wall at small p, the bottom rows carry the small quorums.
        wall = CrumblingWallQuorumSystem([2, 2, 2])
        profile = importance_profile(wall, 0.1)
        bottom = wall.element(2, 0)
        top = wall.element(0, 0)
        assert profile[bottom] > profile[top]

    def test_multilinearity_identity(self):
        for system in (HierarchicalTriangle(5), CrumblingWallQuorumSystem.cwlog(14)):
            derivative, neg_sum = importance_identity_check(system, 0.25)
            assert derivative == pytest.approx(neg_sum, abs=1e-4)

    def test_importance_non_negative(self):
        # Monotone systems: more reliability never hurts.
        for system in STRUCTURED:
            profile = importance_profile(system, 0.3)
            assert (profile >= -1e-12).all()

    def test_improvement_potential(self):
        system = HierarchicalTriangle(4)
        gain = improvement_potential(system, 0.3, 0)
        assert gain > 0
        # Bounded by the Birnbaum importance times the failure mass.
        assert gain <= birnbaum_importance(system, 0.3, 0) + 1e-12

    def test_validation(self):
        system = HierarchicalTriangle(4)
        with pytest.raises(AnalysisError):
            birnbaum_importance(system, 1.5, 0)
        with pytest.raises(AnalysisError):
            birnbaum_importance(system, 0.2, 99)
