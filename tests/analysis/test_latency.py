"""Tests for latency-aware quorum selection."""

import numpy as np
import pytest

from repro.analysis.latency import (
    fastest_quorum,
    latency_load_frontier,
    latency_optimal_strategy,
    latency_profile,
    quorum_latency,
)
from repro.core import AnalysisError
from repro.systems import HierarchicalTriangle, MajorityQuorumSystem


@pytest.fixture(scope="module")
def triangle():
    return HierarchicalTriangle(4)


@pytest.fixture(scope="module")
def rtt(triangle):
    # Element 0 very fast, increasing with id.
    return [1.0 + 0.5 * i for i in range(triangle.n)]


class TestBasics:
    def test_quorum_latency_is_max(self, rtt):
        assert quorum_latency(frozenset({0, 3, 5}), rtt) == pytest.approx(1.0 + 2.5)

    def test_empty_quorum_rejected(self, rtt):
        with pytest.raises(AnalysisError):
            quorum_latency(frozenset(), rtt)

    def test_fastest_quorum(self, triangle, rtt):
        quorum = fastest_quorum(triangle, rtt)
        profile = latency_profile(triangle, rtt)
        assert quorum_latency(quorum, rtt) == pytest.approx(profile.min())

    def test_rtt_validation(self, triangle):
        with pytest.raises(AnalysisError):
            fastest_quorum(triangle, [1.0, 2.0])
        with pytest.raises(AnalysisError):
            fastest_quorum(triangle, [-1.0] * triangle.n)


class TestOptimalStrategy:
    def test_unconstrained_uses_fastest(self, triangle, rtt):
        strategy = latency_optimal_strategy(triangle, rtt)
        best = latency_profile(triangle, rtt).min()
        expected = float(latency_profile(triangle, rtt) @ strategy.weights)
        assert expected == pytest.approx(best, abs=1e-9)

    def test_load_budget_respected(self, triangle, rtt):
        budget = 0.55
        strategy = latency_optimal_strategy(triangle, rtt, max_load=budget)
        assert strategy.induced_load() <= budget + 1e-6

    def test_tight_budget_matches_system_load(self, triangle, rtt):
        tightest = triangle.load(method="lp")
        strategy = latency_optimal_strategy(triangle, rtt, max_load=tightest + 1e-9)
        assert strategy.induced_load() <= tightest + 1e-6

    def test_infeasible_budget_rejected(self, triangle, rtt):
        with pytest.raises(AnalysisError):
            latency_optimal_strategy(triangle, rtt, max_load=0.01)

    def test_bad_budget_rejected(self, triangle, rtt):
        with pytest.raises(AnalysisError):
            latency_optimal_strategy(triangle, rtt, max_load=0.0)


class TestFrontier:
    def test_latency_decreases_as_budget_loosens(self, triangle, rtt):
        frontier = latency_load_frontier(triangle, rtt, points=6)
        latencies = [latency for _, latency in frontier]
        for before, after in zip(latencies, latencies[1:]):
            assert after <= before + 1e-9

    def test_frontier_endpoints(self, triangle, rtt):
        frontier = latency_load_frontier(triangle, rtt, points=5)
        # Loosest budget achieves the global minimum latency.
        best = latency_profile(triangle, rtt).min()
        assert frontier[-1][1] == pytest.approx(best, abs=1e-9)

    def test_points_validation(self, triangle, rtt):
        with pytest.raises(AnalysisError):
            latency_load_frontier(triangle, rtt, points=1)

    def test_uniform_rtt_frontier_flat(self):
        system = MajorityQuorumSystem.of_size(5)
        frontier = latency_load_frontier(system, [2.0] * 5, points=4)
        assert all(latency == pytest.approx(2.0) for _, latency in frontier)
