"""Cross-validation of the availability engines.

Every engine must agree with the naive reference implementation in
``conftest`` — and with each other — on systems small enough for brute
force.
"""

import itertools

import pytest

from repro.analysis import (
    availability,
    availability_exhaustive,
    availability_shannon,
    failure_probability,
    failure_probability_exhaustive,
    failure_probability_heterogeneous,
    failure_probability_montecarlo,
    failure_probability_shannon,
)
from repro.analysis.exhaustive import state_probabilities, usable_states
from repro.core import AnalysisError, ExplicitQuorumSystem, Universe
from ..conftest import brute_force_failure_probability, tiny_majority

SYSTEMS = {
    "maj5": tiny_majority(5),
    "star": ExplicitQuorumSystem(Universe.of_size(4), [{0, 1}, {0, 2}, {0, 3}]),
    "mixed": ExplicitQuorumSystem(
        Universe.of_size(6), [{0, 1, 2}, {2, 3}, {0, 3, 4}, {1, 2, 3, 5}]
    ),
    "singleton": ExplicitQuorumSystem(Universe.of_size(3), [{1}]),
}

P_VALUES = (0.05, 0.1, 0.3, 0.5, 0.7)


@pytest.mark.parametrize("name", sorted(SYSTEMS))
@pytest.mark.parametrize("p", P_VALUES)
class TestAgainstBruteForce:
    def test_exhaustive(self, name, p):
        system = SYSTEMS[name]
        assert failure_probability_exhaustive(system, p) == pytest.approx(
            brute_force_failure_probability(system, p), abs=1e-12
        )

    def test_shannon(self, name, p):
        system = SYSTEMS[name]
        assert failure_probability_shannon(system, p) == pytest.approx(
            brute_force_failure_probability(system, p), abs=1e-12
        )


class TestAvailabilityComplement:
    @pytest.mark.parametrize("p", (0.1, 0.4))
    def test_sum_to_one(self, p):
        system = SYSTEMS["mixed"]
        assert availability_exhaustive(system, p) + failure_probability_exhaustive(
            system, p
        ) == pytest.approx(1.0)
        assert availability_shannon(system, p) + failure_probability_shannon(
            system, p
        ) == pytest.approx(1.0)


class TestHeterogeneous:
    def test_heterogeneous_matches_brute_force(self):
        system = SYSTEMS["star"]
        probs = [0.1, 0.2, 0.3, 0.4]
        expected = 0.0
        for states in itertools.product([0, 1], repeat=4):
            pr = 1.0
            for alive, crash in zip(states, probs):
                pr *= (1 - crash) if alive else crash
            alive_set = {i for i, s in enumerate(states) if s}
            if not system.contains_quorum(alive_set):
                expected += pr
        for method in ("exhaustive", "shannon", "auto"):
            got = failure_probability_heterogeneous(system, probs, method=method)
            assert got == pytest.approx(expected, abs=1e-12)

    def test_wrong_length_rejected(self):
        with pytest.raises(AnalysisError):
            failure_probability_heterogeneous(SYSTEMS["star"], [0.1, 0.2])


class TestMonteCarloEngine:
    def test_covers_exact_value(self, maj5):
        exact = brute_force_failure_probability(maj5, 0.3)
        estimate = failure_probability_montecarlo(maj5, 0.3, samples=200_000, seed=3)
        assert estimate.contains(exact)

    def test_reproducible(self, maj5):
        a = failure_probability_montecarlo(maj5, 0.2, samples=10_000, seed=5)
        b = failure_probability_montecarlo(maj5, 0.2, samples=10_000, seed=5)
        assert a.value == b.value

    def test_different_seeds_differ(self, maj5):
        a = failure_probability_montecarlo(maj5, 0.2, samples=10_000, seed=5)
        b = failure_probability_montecarlo(maj5, 0.2, samples=10_000, seed=6)
        assert a.value != b.value

    def test_bad_confidence_rejected(self, maj5):
        for confidence in (0.0, 1.0, 1.5, -0.3):
            with pytest.raises(AnalysisError):
                failure_probability_montecarlo(
                    maj5, 0.2, samples=100, confidence=confidence
                )

    def test_arbitrary_confidence_via_normal_quantile(self, maj5):
        # 0.975 is not in the precomputed z-table: resolved through
        # scipy.stats.norm.ppf.  z(0.975, two-sided) ~= 2.2414.
        tabled = failure_probability_montecarlo(
            maj5, 0.2, samples=10_000, seed=5, confidence=0.95
        )
        wider = failure_probability_montecarlo(
            maj5, 0.2, samples=10_000, seed=5, confidence=0.975
        )
        assert wider.value == tabled.value  # same samples, same estimate
        assert wider.half_width == pytest.approx(
            tabled.half_width * 2.2414 / 1.9600, rel=1e-3
        )

    def test_tabled_confidence_matches_quantile(self, maj5):
        # The fast-path table agrees with the scipy quantile it caches.
        from scipy.stats import norm

        from repro.analysis.montecarlo import _Z_SCORES

        for confidence, z in _Z_SCORES.items():
            assert z == pytest.approx(norm.ppf(0.5 + confidence / 2), abs=5e-5)

    def test_bad_samples_rejected(self, maj5):
        with pytest.raises(AnalysisError):
            failure_probability_montecarlo(maj5, 0.2, samples=0)

    def test_interval_clipping(self, maj5):
        estimate = failure_probability_montecarlo(maj5, 0.01, samples=1000, seed=0)
        assert 0.0 <= estimate.low <= estimate.high <= 1.0


class TestFrontend:
    def test_edge_probabilities(self, maj5):
        assert failure_probability(maj5, 0.0) == 0.0
        assert failure_probability(maj5, 1.0) == 1.0
        assert availability(maj5, 0.0) == 1.0

    def test_out_of_range_rejected(self, maj5):
        with pytest.raises(AnalysisError):
            failure_probability(maj5, 1.5)
        with pytest.raises(AnalysisError):
            failure_probability(maj5, -0.1)

    def test_unknown_method_rejected(self, maj5):
        with pytest.raises(AnalysisError):
            failure_probability(maj5, 0.3, method="magic")

    def test_structural_method_requires_closed_form(self, maj5):
        with pytest.raises(AnalysisError):
            failure_probability(maj5, 0.3, method="structural")

    def test_methods_agree(self, maj5):
        values = {
            failure_probability(maj5, 0.3, method=m)
            for m in ("auto", "exhaustive", "shannon")
        }
        assert max(values) - min(values) < 1e-12


class TestExhaustiveInternals:
    def test_usable_states_count(self, maj5):
        usable = usable_states(maj5)
        # Alive sets holding a 3-of-5 majority: sum_{k>=3} C(5,k) = 16.
        assert int(usable.sum()) == 16

    def test_state_probabilities_sum_to_one(self):
        probs = state_probabilities(6, 0.37)
        assert probs.sum() == pytest.approx(1.0)

    def test_oversized_universe_rejected(self):
        big = ExplicitQuorumSystem(Universe.of_size(30), [{0}], name="big")
        with pytest.raises(AnalysisError):
            failure_probability_exhaustive(big, 0.1)


class TestShannonBudget:
    def test_state_budget_enforced(self):
        system = SYSTEMS["mixed"]
        with pytest.raises(AnalysisError):
            failure_probability_shannon(system, 0.3, max_states=1)
