"""ShardMap: hashing, tiling, reshape ops, deterministic serialization."""

import json

import pytest

from repro.cli import build_system
from repro.core.errors import ServiceError
from repro.core.serialization import system_from_dict
from repro.sharding import SLOT_SPACE, Shard, ShardMap, key_slot


def uniform_map(count, spec="majority:3"):
    systems = [build_system(spec) for _ in range(count)]
    return ShardMap.uniform(systems, specs=[spec] * count)


class TestKeySlot:
    def test_stable_across_processes(self):
        # sha256-derived, so these values are part of the wire format:
        # a change here invalidates every serialized map.
        assert key_slot("k000") == 1520188425
        assert key_slot("alpha") == 1750832542
        assert key_slot("") == 2566659092

    def test_range(self):
        for key in ("a", "b", "k1234", "🔑"):
            assert 0 <= key_slot(key) < SLOT_SPACE


class TestTiling:
    def test_uniform_covers_slot_space(self):
        shard_map = uniform_map(4)
        assert shard_map.shards[0].lo == 0
        assert shard_map.shards[-1].hi == SLOT_SPACE
        for left, right in zip(shard_map.shards, shard_map.shards[1:]):
            assert left.hi == right.lo

    def test_every_key_routes_to_exactly_one_shard(self):
        shard_map = uniform_map(5)
        for index in range(200):
            key = f"k{index:03d}"
            shard = shard_map.shard_for_key(key)
            assert shard.lo <= key_slot(key) < shard.hi

    def test_gap_rejected(self):
        system = build_system("majority:3")
        with pytest.raises(ServiceError):
            ShardMap(
                [
                    Shard("a", 0, 10, system),
                    Shard("b", 11, SLOT_SPACE, system),
                ]
            )

    def test_overlap_rejected(self):
        system = build_system("majority:3")
        with pytest.raises(ServiceError):
            ShardMap(
                [
                    Shard("a", 0, 10, system),
                    Shard("b", 9, SLOT_SPACE, system),
                ]
            )

    def test_duplicate_ids_rejected(self):
        system = build_system("majority:3")
        half = SLOT_SPACE // 2
        with pytest.raises(ServiceError):
            ShardMap(
                [
                    Shard("a", 0, half, system),
                    Shard("a", half, SLOT_SPACE, system),
                ]
            )

    def test_empty_rejected(self):
        with pytest.raises(ServiceError):
            ShardMap([])


class TestReshapeOps:
    def test_split_halves_range_and_bumps_version(self):
        shard_map = uniform_map(2)
        system = build_system("majority:3")
        child_spec = "majority:3"
        new_map = shard_map.split(
            "s0", system, system, left_spec=child_spec, right_spec=child_spec
        )
        assert new_map.version == shard_map.version + 1
        assert "s0" not in new_map
        left, right = new_map.shard("s0.0"), new_map.shard("s0.1")
        parent = shard_map.shard("s0")
        assert (left.lo, right.hi) == (parent.lo, parent.hi)
        assert left.hi == right.lo
        # The original map is untouched (maps are immutable values).
        assert "s0" in shard_map

    def test_merge_is_adjacent_only(self):
        shard_map = uniform_map(3)
        system = build_system("majority:3")
        merged = shard_map.merge("s0", "s1", system)
        assert merged.shard("s0+s1").lo == 0
        with pytest.raises(ServiceError):
            shard_map.merge("s0", "s2", system)

    def test_replace_keeps_range_for_growth(self):
        shard_map = uniform_map(2, spec="htriang:6")
        grown = shard_map.shard("s0").system.grown("t1")
        new_map = shard_map.replace("s0", grown)
        assert new_map.version == shard_map.version + 1
        replaced = new_map.shard("s0")
        original = shard_map.shard("s0")
        assert (replaced.lo, replaced.hi) == (original.lo, original.hi)
        assert replaced.system.n > original.system.n


class TestSerialization:
    def test_round_trip_preserves_digest(self):
        shard_map = uniform_map(4, spec="majority:5")
        recovered = ShardMap.loads(shard_map.dumps())
        assert recovered.digest() == shard_map.digest()
        assert recovered.version == shard_map.version
        assert [s.shard_id for s in recovered.shards] == [
            s.shard_id for s in shard_map.shards
        ]

    def test_dumps_is_canonical(self):
        # Same logical map -> byte-identical JSON -> stable digest.
        assert uniform_map(3).dumps() == uniform_map(3).dumps()

    def test_round_trip_after_split(self):
        shard_map = uniform_map(2)
        system = build_system("majority:3")
        split = shard_map.split(
            "s1", system, system, left_spec="majority:3", right_spec="majority:3"
        )
        recovered = ShardMap.loads(split.dumps())
        assert recovered.digest() == split.digest()
        assert recovered.version == split.version

    def test_embedded_systems_use_core_serialization(self):
        # Each shard embeds the full repro-quorum-system/1 document, so a
        # map is self-describing even without its spec strings.
        shard_map = uniform_map(2, spec="htriang:6")
        document = json.loads(shard_map.dumps())
        for entry in document["shards"]:
            system = system_from_dict(entry["system"])
            assert system.contains_quorum(frozenset(system.universe.ids))

    def test_heterogeneous_map_round_trips(self):
        systems = [build_system("majority:3"), build_system("htriang:6")]
        shard_map = ShardMap.uniform(systems, specs=["majority:3", "htriang:6"])
        recovered = ShardMap.loads(shard_map.dumps())
        assert recovered.digest() == shard_map.digest()
        assert recovered.shard("s1").system.n == 6

    def test_loads_rejects_foreign_format(self):
        with pytest.raises(ServiceError):
            ShardMap.loads(json.dumps({"format": "not-a-shard-map", "shards": []}))
