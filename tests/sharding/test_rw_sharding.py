"""Read/write strategy pairs across shard maps and reshard operations.

Satellite property: the 2-intersection invariant (every read quorum
meets every write quorum) must hold on *every* shard's system after any
sequence of map operations — uniform construction, mid-range splits,
ring-adjacent merges, and §5 in-place growth — because each new shard
solves its own capacity LP and serves reads from its own read family.
"""

import pytest

from repro.analysis.capacity import read_quorums_of, read_write_capacity
from repro.runtime import RngStreams, VirtualClock
from repro.sharding import ShardMap, build_sim_backend_factory
from repro.sharding.bench import run_sharded_benchmark
from repro.systems import (
    GridQuorumSystem,
    HierarchicalGrid,
    HierarchicalTriangle,
    MajorityQuorumSystem,
)


def assert_read_write_intersection(system):
    writes = list(system.minimal_quorums())
    for read_quorum in read_quorums_of(system):
        for write_quorum in writes:
            assert read_quorum & write_quorum, (
                f"{system.system_name}: read {sorted(read_quorum)} misses"
                f" write {sorted(write_quorum)}"
            )


def assert_map_invariant(shard_map):
    for shard_id in shard_map.shard_ids:
        assert_read_write_intersection(shard_map.shard(shard_id).system)


class TestShardMapInvariant:
    def test_uniform_map(self):
        shard_map = ShardMap.uniform(
            [GridQuorumSystem(4, 4), HierarchicalGrid.halving(4, 4)]
        )
        assert_map_invariant(shard_map)

    def test_split_then_merge_keeps_the_invariant(self):
        shard_map = ShardMap.uniform(
            [GridQuorumSystem(4, 4), MajorityQuorumSystem.of_size(5)]
        )
        shard_map = shard_map.split(
            "s0",
            HierarchicalGrid.halving(4, 4),
            GridQuorumSystem(3, 3),
        )
        assert_map_invariant(shard_map)
        shard_map = shard_map.merge(
            "s0.0", "s0.1", HierarchicalTriangle.of_size(15)
        )
        assert_map_invariant(shard_map)

    def test_section5_growth_keeps_the_invariant(self):
        # §5 growth is only defined on flat sub-grids.
        base = HierarchicalTriangle.of_size(15, subgrid="flat")
        shard_map = ShardMap.uniform([base, GridQuorumSystem(3, 3)])
        for construction in ("t1", "t2", "grid"):
            grown_map = shard_map.replace(
                "s0", shard_map.shard("s0").system.grown(construction)
            )
            assert_map_invariant(grown_map)

    def test_every_shard_lp_pair_is_constructible(self):
        # The LP output pair re-verifies 2-intersection at construction,
        # so a successful solve per shard doubles as a safety proof.
        shard_map = ShardMap.uniform(
            [GridQuorumSystem(4, 4), MajorityQuorumSystem.of_size(5)]
        ).split("s0", HierarchicalGrid.halving(4, 4), GridQuorumSystem(3, 3))
        for shard_id in shard_map.shard_ids:
            system = shard_map.shard(shard_id).system
            pair = read_write_capacity(system, read_fraction=0.9).strategy
            assert pair.system is system


class TestReadWriteBackendFactory:
    def test_factory_builds_split_coordinators(self):
        clock = VirtualClock()
        streams = RngStreams(7)
        factory = build_sim_backend_factory(clock, streams, read_write=0.9)
        shard_map = ShardMap.uniform(
            [GridQuorumSystem(4, 4), MajorityQuorumSystem.of_size(5)]
        )
        grid_backend = factory(shard_map.shard("s0"))
        majority_backend = factory(shard_map.shard("s1"))
        assert grid_backend.coordinator.rw_strategy.is_split
        # Majority is self-dual: the LP lands on one distribution but
        # the coordinator still routes through the pair API.
        assert majority_backend.coordinator.rw_strategy is not None

    def test_unified_factory_stays_unsplit(self):
        clock = VirtualClock()
        streams = RngStreams(7)
        factory = build_sim_backend_factory(clock, streams)
        shard = ShardMap.uniform([GridQuorumSystem(4, 4)]).shard("s0")
        backend = factory(shard)
        assert not backend.coordinator.rw_strategy.is_split


class TestShardedReadWriteBenchmark:
    def test_read_write_run_is_deterministic_and_clean(self):
        kwargs = dict(
            seed=11,
            ops=240,
            keys=64,
            clients=6,
            read_write=True,
            read_fraction=0.9,
        )
        systems = [GridQuorumSystem(4, 4), GridQuorumSystem(4, 4)]
        first = run_sharded_benchmark(list(systems), **kwargs)
        second = run_sharded_benchmark(list(systems), **kwargs)
        assert first.to_dict() == second.to_dict()
        assert first.read_write
        assert first.failed == 0
        assert first.to_dict()["read_write"] is True

    def test_split_outpaces_unified_on_read_heavy_shards(self):
        systems = [GridQuorumSystem(4, 4), GridQuorumSystem(4, 4)]
        common = dict(seed=3, ops=300, keys=64, clients=8, read_fraction=0.9)
        split = run_sharded_benchmark(list(systems), read_write=True, **common)
        unified = run_sharded_benchmark(
            list(systems), read_write=False, **common
        )
        assert split.failed == 0 and unified.failed == 0
        assert (
            split.ops_per_virtual_second > unified.ops_per_virtual_second
        )
