"""CLI coverage for the sharding layer: kvbench --shards and reshard."""

import json

import pytest

from repro.cli import main

QUICK_RESHARD = [
    "reshard", "--spec", "majority:3", "--shards", "3",
    "--ops", "150", "--keys", "16", "--clients", "3",
]


class TestKvbenchShards:
    def test_sharded_kvbench_reports_skew_and_throughput(self, capsys):
        main([
            "kvbench", "majority:3", "--shards", "4",
            "--ops", "200", "--keys", "64", "--seed", "1",
            "--timeout", "250",
        ])
        out = capsys.readouterr().out
        assert "4 shards" in out
        assert "ops/virtual-second" in out
        assert "key skew" in out
        assert "per-shard ops" in out

    def test_sharded_kvbench_json_is_deterministic(self, capsys):
        argv = [
            "kvbench", "majority:3", "--shards", "2",
            "--ops", "150", "--seed", "5", "--timeout", "250", "--json",
        ]
        main(argv)
        first = capsys.readouterr().out
        main(argv)
        second = capsys.readouterr().out
        assert first == second
        snapshot = json.loads(first)
        assert snapshot["shards"] == 2
        assert snapshot["succeeded"] + snapshot["failed"] == 150
        assert snapshot["key_skew"]["total"] >= 150

    def test_shards_rejects_tcp_modes(self):
        with pytest.raises(SystemExit):
            main(["kvbench", "majority:3", "--shards", "2", "--tcp-local"])

    def test_unsharded_kvbench_reports_key_skew(self, capsys):
        main(["kvbench", "majority:3", "--ops", "150", "--seed", "0"])
        out = capsys.readouterr().out
        assert "key skew" in out


class TestReshardCommand:
    def test_single_seed_report(self, capsys):
        main(QUICK_RESHARD + ["--seed", "0"])
        out = capsys.readouterr().out
        assert "invariants    : all held" in out
        assert "reshard" in out
        assert "trace hash" in out

    def test_sweep_exits_zero_when_all_ok(self, capsys):
        main(QUICK_RESHARD + ["--seeds", "3"])
        out = capsys.readouterr().out
        assert "across 3 seeds" in out
        assert "all held" in out

    def test_lease_ttl_runs_clean(self, capsys):
        main(QUICK_RESHARD + ["--seed", "0", "--lease-ttl", "12"])
        out = capsys.readouterr().out
        assert "invariants    : all held" in out

    def test_json_out_scorecard(self, tmp_path, capsys):
        out_path = tmp_path / "reshard.json"
        main(QUICK_RESHARD + ["--seeds", "2", "--json-out", str(out_path)])
        capsys.readouterr()
        artifact = json.loads(out_path.read_text())
        assert artifact["all_ok"] is True
        assert len(artifact["runs"]) == 2
        assert "perf" in artifact
        for run in artifact["runs"]:
            assert run["invariants"]["ok"] is True

    def test_json_is_deterministic(self, capsys):
        argv = QUICK_RESHARD + ["--seed", "2", "--json"]
        main(argv)
        first = capsys.readouterr().out
        main(argv)
        second = capsys.readouterr().out
        assert first == second

    def test_mutually_exclusive_modes(self):
        with pytest.raises(SystemExit):
            main(QUICK_RESHARD + ["--sim", "--wall"])

    def test_bad_seeds_rejected(self):
        with pytest.raises(SystemExit):
            main(QUICK_RESHARD + ["--seeds", "0"])
