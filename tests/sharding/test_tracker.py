"""ShardLoadTracker: hot-shard detection semantics."""

from repro.sharding import ShardLoadTracker


def warmed(tracker, shard_id, ops, latency=1.0):
    for _ in range(ops):
        tracker.record_op(shard_id, "read", latency)


class TestHotShards:
    def test_cold_fleet_has_no_hot_shards(self):
        tracker = ShardLoadTracker()
        for sid in ("a", "b", "c"):
            warmed(tracker, sid, 10)
        assert tracker.hot_shards(["a", "b", "c"]) == []

    def test_min_ops_gate(self):
        tracker = ShardLoadTracker()
        warmed(tracker, "a", 40)  # overloaded relative to b/c, but < min_ops
        warmed(tracker, "b", 1)
        warmed(tracker, "c", 1)
        assert tracker.hot_shards(["a", "b", "c"], min_ops=50) == []
        assert tracker.hot_shards(["a", "b", "c"], min_ops=10) == ["a"]

    def test_factor_threshold_over_fleet_mean(self):
        tracker = ShardLoadTracker()
        warmed(tracker, "a", 300)
        warmed(tracker, "b", 100)
        warmed(tracker, "c", 100)
        # mean ~166: a (300) < 2x mean, so nothing is hot at factor 2...
        assert tracker.hot_shards(["a", "b", "c"], factor=2.0) == []
        # ...but it is at a gentler factor.
        assert tracker.hot_shards(["a", "b", "c"], factor=1.5) == ["a"]

    def test_hottest_first(self):
        tracker = ShardLoadTracker()
        warmed(tracker, "a", 500)
        warmed(tracker, "b", 900)
        warmed(tracker, "c", 10)
        hot = tracker.hot_shards(["a", "b", "c"], factor=1.0, min_ops=50)
        assert hot == ["b", "a"]
        assert tracker.hottest(["a", "b", "c"]) == "b"

    def test_scoped_to_given_shard_ids(self):
        # Retired shards keep their counters; detection only considers
        # the ids of the *current* map.
        tracker = ShardLoadTracker()
        warmed(tracker, "retired", 10_000)
        warmed(tracker, "a", 60)
        warmed(tracker, "b", 10)
        assert tracker.hottest(["a", "b"]) == "a"
        assert "retired" not in tracker.hot_shards(["a", "b"], factor=1.0)

    def test_snapshot_shape(self):
        tracker = ShardLoadTracker()
        warmed(tracker, "a", 3, latency=2.0)
        snap = tracker.snapshot()
        assert snap["a"]["ops"] == 3
        assert snap["a"]["latency_ms"]["mean"] == 2.0
