"""Resharding-under-faults chaos harness: invariants and determinism."""

import pytest

from repro.core.errors import ServiceError
from repro.sharding import ReshardChaosConfig, run_reshard_chaos

QUICK = ReshardChaosConfig(ops=150, keys=16, clients=3, shards=3, spec="majority:3")


class TestInvariants:
    @pytest.mark.parametrize("seed", range(5))
    def test_no_violations_across_seeds(self, seed):
        report = run_reshard_chaos(seed=seed, config=QUICK)
        assert report.ok, report.violations
        # Sanity: the workload actually ran.
        assert report.operations["preloads"] == QUICK.keys
        total = sum(
            report.operations[k]
            for k in ("reads_ok", "reads_failed", "writes_ok", "writes_failed")
        )
        assert total == QUICK.ops

    def test_split_can_complete_under_faults(self):
        # Seed chosen so the split runs to a flip (locked by determinism).
        report = run_reshard_chaos(seed=0, config=QUICK)
        assert report.reshard_completed
        assert report.map_versions == (1, 2)
        assert report.ok

    def test_aborted_split_is_legal_and_safe(self):
        # A seed where faults abort the migration: old map stays, and the
        # invariants must still all hold.
        for seed in range(10):
            report = run_reshard_chaos(seed=seed, config=QUICK)
            if report.reshards and not report.reshard_completed:
                assert report.map_versions == (1, 1)
                assert report.ok, report.violations
                return
        pytest.skip("no aborting seed in range (config got too forgiving)")

    def test_leases_hold_under_reshard_churn(self):
        # Quorum leases on every per-shard coordinator: fresh backends
        # start leaseless, so the drain→copy→flip handoff exercises the
        # re-join handshake mid-run.  Safety must be unaffected.
        config = ReshardChaosConfig(
            ops=150, keys=16, clients=3, shards=3, spec="majority:3",
            lease_ttl=12,
        )
        report = run_reshard_chaos(seed=0, config=config)
        assert report.ok, report.violations
        assert report.reshard_completed
        # Leases changed the coordinator schedule, not the outcome.
        baseline = run_reshard_chaos(seed=0, config=QUICK)
        assert baseline.ok

    def test_lease_ttl_validated(self):
        with pytest.raises(ServiceError):
            ReshardChaosConfig(lease_ttl=-1).validate()

    def test_grow_mode(self):
        config = ReshardChaosConfig(
            ops=120,
            keys=12,
            clients=3,
            shards=2,
            spec="htriang:6",
            reshard="grow",
            crash_rate=0.05,
        )
        report = run_reshard_chaos(seed=1, config=config)
        assert report.ok, report.violations
        if report.reshard_completed:
            assert report.map_versions == (1, 2)

    def test_none_mode_is_a_clean_baseline(self):
        config = ReshardChaosConfig(
            ops=100, keys=12, clients=2, shards=2, spec="majority:3", reshard="none"
        )
        report = run_reshard_chaos(seed=0, config=config)
        assert report.ok
        assert report.reshards == []
        assert report.map_versions == (1, 1)


class TestDeterminism:
    def test_same_seed_same_hashes(self):
        first = run_reshard_chaos(seed=2, config=QUICK)
        second = run_reshard_chaos(seed=2, config=QUICK)
        assert first.hashes == second.hashes
        assert first.operations == second.operations
        assert first.map_digest == second.map_digest

    def test_different_seeds_diverge(self):
        a = run_reshard_chaos(seed=0, config=QUICK)
        b = run_reshard_chaos(seed=1, config=QUICK)
        assert a.hashes["trace"] != b.hashes["trace"]


class TestConfigValidation:
    def test_bad_kind_rejected(self):
        with pytest.raises(ServiceError):
            ReshardChaosConfig(reshard="shuffle").validate()

    def test_bad_mode_rejected(self):
        with pytest.raises(ServiceError):
            run_reshard_chaos(seed=0, config=QUICK, mode="hyperspeed")

    def test_reshard_at_bounds(self):
        with pytest.raises(ServiceError):
            ReshardChaosConfig(reshard_at=1.5).validate()


class TestReport:
    def test_to_dict_lists_all_invariants(self):
        report = run_reshard_chaos(seed=0, config=QUICK)
        blob = report.to_dict()
        assert blob["invariants"]["checked"] == [
            "acked-write-durable",
            "no-stale-unflagged-read",
            "version-integrity",
            "replica-ts-monotone",
        ]
        assert blob["invariants"]["ok"] is True
        assert set(blob["hashes"]) == {"trace", "snapshot"}
