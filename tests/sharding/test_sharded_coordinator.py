"""ShardedCoordinator: routing, live split/merge/grow, no lost writes."""

import asyncio

import pytest

from repro.cli import build_system
from repro.core.errors import ServiceError
from repro.runtime import RngStreams, VirtualClock, run_virtual
from repro.sharding import ShardMap, ShardedCoordinator, build_sim_backend_factory


def make_sharded(shards=2, spec="majority:3", seed=0, clock=None, **factory_kw):
    clock = clock if clock is not None else VirtualClock()
    systems = [build_system(spec) for _ in range(shards)]
    shard_map = ShardMap.uniform(systems, specs=[spec] * shards)
    factory = build_sim_backend_factory(clock, RngStreams(seed), **factory_kw)
    return clock, ShardedCoordinator(shard_map, factory)


def run(clock, coro):
    return run_virtual(coro, clock=clock)


KEYS = [f"k{i:03d}" for i in range(40)]


class TestRouting:
    def test_write_read_round_trip_across_shards(self):
        clock, sharded = make_sharded(shards=3)

        async def main():
            for index, key in enumerate(KEYS):
                await sharded.write(key, f"v{index}")
            for index, key in enumerate(KEYS):
                result = await sharded.read(key)
                assert result.value == f"v{index}"
                assert not result.stale
            # The workload actually spread over multiple shards.
            assert len(sharded._backends) > 1
            await sharded.close()

        run(clock, main())

    def test_lease_ttl_wires_quorum_leases_into_every_shard(self):
        clock, sharded = make_sharded(shards=2, lease_ttl=3)
        stats = {}

        async def main():
            for index, key in enumerate(KEYS):
                await sharded.write(key, index)
            for key in KEYS:
                assert (await sharded.read(key)).value is not None
            for shard_id, backend in sharded._backends.items():
                stats[shard_id] = (
                    sum(replica.joins_served for replica in backend.replicas),
                    backend.coordinator.metrics.lease_renewals,
                )
            await sharded.close()

        run(clock, main())
        assert len(stats) == 2
        for joins, renewals in stats.values():
            # Every shard's coordinator ran real join handshakes.
            assert joins > 0 and renewals > 0

    def test_load_is_tracked_per_shard(self):
        clock, sharded = make_sharded(shards=2)

        async def main():
            for key in KEYS:
                await sharded.write(key, 1)
            await sharded.close()

        run(clock, main())
        load = sharded.tracker.snapshot()
        assert sum(entry["ops"] for entry in load.values()) == len(KEYS)


class TestLiveSplit:
    def test_split_moves_keys_and_loses_nothing(self):
        clock, sharded = make_sharded(shards=2)

        async def main():
            for index, key in enumerate(KEYS):
                await sharded.write(key, f"v{index}")
            event = await sharded.split_shard("s0")
            assert event.ok
            assert event.kind == "split"
            assert sharded.map.version == 2
            assert {"s0.0", "s0.1"} <= set(sharded.map.shard_ids)
            for index, key in enumerate(KEYS):
                result = await sharded.read(key)
                assert result.value == f"v{index}"
            await sharded.close()

        run(clock, main())

    def test_writes_during_split_are_queued_not_lost(self):
        clock, sharded = make_sharded(shards=2)

        async def main():
            for key in KEYS:
                await sharded.write(key, "before")

            async def writer():
                # Issued while the split is in flight: must block until
                # the flip, then land in the new epoch.
                return await sharded.write(KEYS[0], "during")

            split_task = asyncio.ensure_future(sharded.split_shard("s0"))
            write_task = asyncio.ensure_future(writer())
            event = await split_task
            ack = await write_task
            assert event.ok
            assert ack.counter > 0
            result = await sharded.read(KEYS[0])
            assert result.value == "during"
            await sharded.close()

        run(clock, main())

    def test_timestamps_survive_migration(self):
        clock, sharded = make_sharded(shards=2)

        async def main():
            acks = {key: await sharded.write(key, key) for key in KEYS}
            await sharded.split_shard("s0")
            for key in KEYS:
                result = await sharded.read(key)
                assert (result.counter, result.writer) == (
                    acks[key].counter,
                    acks[key].writer,
                )
            await sharded.close()

        run(clock, main())


class TestMergeAndGrow:
    def test_merge_adjacent_shards(self):
        clock, sharded = make_sharded(shards=3)

        async def main():
            for index, key in enumerate(KEYS):
                await sharded.write(key, index)
            event = await sharded.merge_shards("s0", "s1")
            assert event.ok
            assert "s0+s1" in sharded.map
            for index, key in enumerate(KEYS):
                assert (await sharded.read(key)).value == index
            await sharded.close()

        run(clock, main())

    def test_grow_keeps_id_and_data(self):
        clock, sharded = make_sharded(shards=2, spec="htriang:6")

        async def main():
            for index, key in enumerate(KEYS):
                await sharded.write(key, index)
            before_n = sharded.map.shard("s0").system.n
            event = await sharded.grow_shard("s0")
            assert event.ok
            assert event.kind == "grow"
            assert sharded.map.shard("s0").system.n > before_n
            for index, key in enumerate(KEYS):
                assert (await sharded.read(key)).value == index
            await sharded.close()

        run(clock, main())

    def test_grow_requires_growable_system(self):
        clock, sharded = make_sharded(shards=1, spec="majority:3")

        async def main():
            with pytest.raises(ServiceError):
                await sharded.grow_shard("s0")
            await sharded.close()

        run(clock, main())


class TestHotDetectionIntegration:
    def test_split_hottest_fires_only_when_skewed(self):
        clock, sharded = make_sharded(shards=2)

        async def main():
            # Uniform-ish low traffic: no split.
            for key in KEYS:
                await sharded.write(key, 0)
            assert await sharded.split_hottest(min_ops=200) is None
            # Hammer one key far past the threshold: its shard gets hot.
            hot_key = KEYS[0]
            for _ in range(300):
                await sharded.read(hot_key)
            event = await sharded.split_hottest(factor=1.5, min_ops=50)
            assert event is not None and event.ok
            assert sharded.map.version == 2
            await sharded.close()

        run(clock, main())


class TestReshardLog:
    def test_snapshot_records_history(self):
        clock, sharded = make_sharded(shards=2)

        async def main():
            await sharded.write("k", 1)
            await sharded.split_shard("s0")
            await sharded.close()

        run(clock, main())
        snap = sharded.snapshot()
        assert snap["map_version"] == 2
        assert len(snap["reshards"]) == 1
        assert snap["reshards"][0]["ok"] is True
        assert snap["reshards"][0]["from_version"] == 1
        assert snap["reshards"][0]["to_version"] == 2

    def test_concurrent_reshards_rejected(self):
        clock, sharded = make_sharded(shards=2)

        async def main():
            for key in KEYS:
                await sharded.write(key, 0)
            first = asyncio.ensure_future(sharded.split_shard("s0"))
            await asyncio.sleep(0)  # let the first migration register
            with pytest.raises(ServiceError):
                await sharded.split_shard("s1")
            event = await first
            assert event.ok
            await sharded.close()

        run(clock, main())
