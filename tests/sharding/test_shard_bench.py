"""Sharded virtual-time benchmark: determinism and the scaling claim."""

from repro.cli import build_system
from repro.sharding import compare_shard_scaling, run_sharded_benchmark

WORKLOAD = dict(ops=300, keys=64, skew=0.9, clients=8, service_time_ms=2.0)


def bench(shards, seed=0):
    systems = [build_system("majority:3") for _ in range(shards)]
    return run_sharded_benchmark(
        systems, specs=["majority:3"] * shards, seed=seed, **WORKLOAD
    )


class TestBenchmark:
    def test_all_ops_succeed_fault_free(self):
        report = bench(2)
        assert report.succeeded == WORKLOAD["ops"]
        assert report.failed == 0

    def test_deterministic_per_seed(self):
        first, second = bench(2, seed=7), bench(2, seed=7)
        assert first.virtual_ms == second.virtual_ms
        assert first.key_skew == second.key_skew
        assert first.map_digest == second.map_digest

    def test_reports_key_skew(self):
        report = bench(2)
        skew = report.key_skew
        assert skew["total"] >= WORKLOAD["ops"]
        assert skew["hottest_share"] > 1.0 / WORKLOAD["keys"]
        assert len(skew["top_k"]) == 10

    def test_scorecard_echoes_seed_config_and_invariants(self):
        # Every quorumtool scorecard carries the same audit keys: the
        # seed, the full workload config, and an invariants block with
        # violation_counts (empty here — nothing is audited).
        snapshot = bench(2, seed=5).to_dict()
        assert snapshot["seed"] == 5
        config = snapshot["config"]
        assert config["ops"] == WORKLOAD["ops"]
        assert config["specs"] == ["majority:3", "majority:3"]
        block = snapshot["invariants"]
        assert set(block) == {"checked", "ok", "violations", "violation_counts"}
        assert block["ok"] is True and block["violation_counts"] == {}

    def test_sharding_scales_throughput(self):
        # The acceptance headline, at test scale: more shards, more
        # capacity, strictly less virtual time for the same workload.
        comparison = compare_shard_scaling(
            build_system,
            spec="majority:3",
            shard_counts=(1, 4),
            seed=0,
            **WORKLOAD,
        )
        assert comparison["speedup"] > 1.5
        one = comparison["runs"]["1"]
        four = comparison["runs"]["4"]
        assert one["succeeded"] == four["succeeded"] == WORKLOAD["ops"]
        assert four["virtual_ms"] < one["virtual_ms"]
