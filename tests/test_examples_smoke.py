"""Smoke tests for the example scripts.

Each example is importable (syntax + imports resolve) and exposes a
``main``; the two fastest are executed end-to-end in-process.
"""

import importlib.util
import sys
from pathlib import Path

import pytest

EXAMPLES = sorted((Path(__file__).parent.parent / "examples").glob("*.py"))


def load_example(path: Path):
    spec = importlib.util.spec_from_file_location(f"example_{path.stem}", path)
    module = importlib.util.module_from_spec(spec)
    spec.loader.exec_module(module)
    return module


@pytest.mark.parametrize("path", EXAMPLES, ids=lambda p: p.stem)
def test_example_importable(path):
    module = load_example(path)
    assert callable(getattr(module, "main", None))


@pytest.mark.parametrize("stem", ["quickstart", "growing_triangle"])
def test_fast_examples_run(stem, capsys):
    path = next(p for p in EXAMPLES if p.stem == stem)
    load_example(path).main()
    out = capsys.readouterr().out
    assert out.strip()
