"""Tests for the open-loop Poisson arrival model in the load generator."""

import pytest

from repro.analysis.load import optimal_strategy
from repro.core.errors import ServiceError
from repro.runtime.clock import VirtualClock, run_virtual
from repro.runtime.rng import RngStreams
from repro.service import (
    ServiceMetrics,
    SimTransport,
    WorkloadConfig,
    make_replicas,
    run_kv_benchmark,
    run_workload,
)
from repro.service.transport import InProcessTransport
from repro.systems import MajorityQuorumSystem


def _run_sim_workload(config, *, seed=0):
    """Drive ``run_workload`` over a SimTransport under virtual time."""
    system = MajorityQuorumSystem.of_size(5)
    strategy = optimal_strategy(system)
    clock = VirtualClock()
    transport = SimTransport(
        make_replicas(system),
        clock=clock,
        seed=RngStreams(seed).seed_for("loadgen.transport"),
        base_latency=0.1,
        mean_latency=0.3,
    )

    async def _run() -> ServiceMetrics:
        try:
            return await run_workload(
                system, transport, strategy, config, seed=seed
            )
        finally:
            await transport.close()

    return run_virtual(_run(), clock=clock)


class TestConfigValidation:
    def test_rejects_unknown_arrival_model(self):
        with pytest.raises(ServiceError):
            WorkloadConfig(arrival="burst").validate()

    def test_poisson_needs_a_positive_rate(self):
        with pytest.raises(ServiceError):
            WorkloadConfig(arrival="poisson").validate()
        with pytest.raises(ServiceError):
            WorkloadConfig(arrival="poisson", arrival_rate=-1.0).validate()
        WorkloadConfig(arrival="poisson", arrival_rate=200.0).validate()

    def test_closed_loop_ignores_the_rate(self):
        WorkloadConfig(arrival="closed", arrival_rate=0.0).validate()


class TestOpenLoop:
    def test_sustains_the_configured_rate_under_virtual_time(self):
        # The acceptance check: under virtual time the generator spawns
        # every operation exactly on its Poisson arrival tick (zero
        # lag), so achieved throughput matches the configured rate up
        # to the sampling noise of the draws themselves.
        config = WorkloadConfig(
            ops=400, clients=4, arrival="poisson", arrival_rate=800.0
        )
        metrics = _run_sim_workload(config)
        assert metrics.ops_succeeded == 400
        arrival = metrics.arrival
        assert arrival["mode"] == "poisson"
        assert arrival["rate_ops_per_s"] == 800.0
        assert arrival["max_spawn_lag_ms"] < 1e-6
        assert arrival["achieved_ops_per_s"] == pytest.approx(800.0, rel=0.1)

    def test_seeded_open_loop_is_deterministic(self):
        config = WorkloadConfig(
            ops=200, clients=2, arrival="poisson", arrival_rate=500.0
        )
        first = _run_sim_workload(config, seed=7)
        second = _run_sim_workload(config, seed=7)
        assert first.arrival == second.arrival
        assert first.to_dict() == second.to_dict()

    def test_closed_loop_records_no_arrival_block(self):
        config = WorkloadConfig(ops=100, clients=2)
        metrics = _run_sim_workload(config)
        assert not hasattr(metrics, "arrival")

    def test_arrival_stream_does_not_shift_closed_loop_draws(self):
        # The Poisson draws live on their own named stream: a closed
        # loop with the same seed is byte-identical whether or not the
        # open-loop feature exists in the codebase.
        config = WorkloadConfig(ops=150, clients=2)
        a = _run_sim_workload(config, seed=3)
        b = _run_sim_workload(config, seed=3)
        assert a.to_dict() == b.to_dict()

    def test_poisson_requires_a_clocked_transport(self):
        # InProcessTransport has no Clock: the open loop has no time
        # source to pace against, so the config is rejected at runtime.
        system = MajorityQuorumSystem.of_size(5)
        strategy = optimal_strategy(system)
        transport = InProcessTransport(make_replicas(system), seed=0)
        config = WorkloadConfig(
            ops=50, arrival="poisson", arrival_rate=100.0
        )

        async def _run():
            await run_workload(system, transport, strategy, config, seed=0)

        import asyncio

        with pytest.raises(ServiceError, match="clocked transport"):
            asyncio.run(_run())


class TestScorecardEcho:
    def test_kvbench_report_echoes_arrival_and_invariants(self):
        report = run_kv_benchmark(
            MajorityQuorumSystem.of_size(5), seed=0, ops=100
        )
        snapshot = report.to_dict()
        assert snapshot["config"]["arrival"] == "closed"
        assert snapshot["config"]["arrival_rate"] == 0.0
        block = snapshot["invariants"]
        assert set(block) == {"checked", "ok", "violations", "violation_counts"}
        assert block["ok"] is True
