"""Tests for repro.service.cluster: multi-process replica workers.

A :class:`ReplicaCluster` hosts the replica set across OS processes,
each serving the dual-protocol TCP servers.  These tests cover the
address-map handshake, round-robin placement, serving over both
protocols, clean (idempotent) shutdown, and crash detection feeding
``ReplicaUnavailable``.
"""

import asyncio

import pytest

from repro.core.errors import ServiceError
from repro.service import (
    BinaryTcpTransport,
    ReplicaCluster,
    ReplicaUnavailable,
    TcpTransport,
)


class TestLifecycle:
    def test_start_reports_every_replica_and_close_is_idempotent(self):
        cluster = ReplicaCluster(range(5), workers=2)
        try:
            addresses = cluster.start()
            assert sorted(addresses) == [0, 1, 2, 3, 4]
            assert cluster.start() is addresses  # idempotent start
            workers = {cluster.worker_for(i).pid for i in range(5)}
            assert len(workers) == 2  # round-robin actually spread out
        finally:
            cluster.close()
        assert cluster.poll_crashed() == []
        cluster.close()  # second close is a no-op

    def test_workers_capped_at_replica_count(self):
        cluster = ReplicaCluster([0, 1], workers=8)
        assert cluster.workers == 2

    def test_bad_parameters_rejected(self):
        with pytest.raises(ServiceError):
            ReplicaCluster([])
        with pytest.raises(ServiceError):
            ReplicaCluster([0], workers=0)

    def test_base_port_layout_survives_worker_partitioning(self):
        # Regression: `serve --workers N --base-port P` must keep the
        # base_port + id port layout external `kvbench --tcp` clients
        # dial against; early versions let every worker bind ephemeral
        # ports, making the cluster unreachable from outside.
        import socket

        probe = socket.socket()
        probe.bind(("127.0.0.1", 0))
        base = probe.getsockname()[1]
        probe.close()
        with ReplicaCluster(range(3), workers=2, base_port=base) as cluster:
            assert cluster.addresses == {
                i: ("127.0.0.1", base + i) for i in range(3)
            }

    def test_context_manager_starts_and_stops(self):
        with ReplicaCluster(range(3), workers=3) as cluster:
            assert len(cluster.addresses) == 3
            processes = [cluster.worker_for(i) for i in range(3)]
            assert all(p.is_alive() for p in processes)
        assert all(not p.is_alive() for p in processes)


class TestServing:
    def test_both_protocols_round_trip_against_worker_replicas(self):
        with ReplicaCluster(range(4), workers=2) as cluster:

            async def scenario():
                binary = BinaryTcpTransport(cluster.addresses)
                jsonl = TcpTransport(cluster.addresses)
                for replica_id in range(4):
                    ack = await binary.call(
                        replica_id,
                        {"op": "write", "key": "k", "value": replica_id,
                         "counter": 1, "writer": 0},
                    )
                    assert ack.payload["applied"]
                # Same replica, other protocol: one store per replica.
                for replica_id in range(4):
                    seen = await jsonl.call(replica_id, {"op": "read", "key": "k"})
                    assert seen.payload["value"] == replica_id
                    assert seen.payload["replica"] == replica_id
                await binary.close()
                await jsonl.close()

            asyncio.run(scenario())


class TestCrashDetection:
    def test_dead_worker_reported_and_calls_raise_unavailable(self):
        with ReplicaCluster(range(4), workers=2) as cluster:
            victim = cluster.worker_for(0)
            survivor_ids = [
                i for i in range(4) if cluster.worker_for(i).pid != victim.pid
            ]
            victim.terminate()
            victim.join(timeout=5.0)

            crashed = cluster.poll_crashed()
            assert 0 in crashed
            assert all(i not in crashed for i in survivor_ids)

            async def scenario():
                transport = BinaryTcpTransport(cluster.addresses)
                with pytest.raises(ReplicaUnavailable):
                    await transport.call(0, {"op": "ping"}, timeout=2_000.0)
                # Replicas on the surviving worker keep answering.
                for replica_id in survivor_ids:
                    reply = await transport.call(replica_id, {"op": "ping"})
                    assert reply.payload["ok"]
                await transport.close()

            asyncio.run(scenario())
