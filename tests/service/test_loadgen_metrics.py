"""Tests for repro.service.loadgen + metrics: determinism and the
observed-vs-LP-load acceptance criterion."""

import json

import numpy as np
import pytest

from repro.analysis.load import optimal_strategy
from repro.core.errors import ServiceError
from repro.service import (
    ServiceMetrics,
    WorkloadConfig,
    build_schedule,
    key_weights,
    run_kv_benchmark,
)
from repro.systems import HierarchicalTriangle, MajorityQuorumSystem


class TestMetrics:
    def test_observed_loads_and_success_rate(self):
        metrics = ServiceMetrics(4)
        metrics.record_quorum_access({0, 1})
        metrics.record_quorum_access({0, 2})
        metrics.record_op("read", 5.0, ok=True, attempts=1)
        metrics.record_op("write", 9.0, ok=False, attempts=3)
        loads = metrics.observed_loads()
        assert loads == pytest.approx([1.0, 0.5, 0.5, 0.0])
        assert metrics.success_rate == 0.5
        assert metrics.retries == 2
        assert metrics.latency_percentile(50) == pytest.approx(7.0)

    def test_load_deviation_handles_zero_predictions(self):
        metrics = ServiceMetrics(3)
        metrics.record_quorum_access({0, 1})
        deviation = metrics.load_deviation([1.0, 1.0, 0.0])
        # Element 2 predicted at 0 must not blow up the relative error.
        assert deviation["max_relative_error"] == pytest.approx(0.0, abs=1e-9)
        with pytest.raises(ServiceError):
            metrics.load_deviation([1.0])

    def test_to_dict_is_json_serialisable(self):
        metrics = ServiceMetrics(2)
        metrics.record_quorum_access({0})
        metrics.record_op("read", 1.0, ok=True, attempts=1)
        snapshot = metrics.to_dict(predicted=[1.0, 0.0])
        json.dumps(snapshot)  # must not raise
        assert snapshot["load_deviation"]["observed_max_load"] == 1.0

    def test_degradation_counters(self):
        metrics = ServiceMetrics(3)
        metrics.record_degraded_read()
        metrics.record_hint()
        metrics.record_hint()
        metrics.record_hint_replayed()
        metrics.record_breaker_open()
        snapshot = metrics.to_dict()
        assert snapshot["degraded_reads"] == 1
        assert snapshot["hints_recorded"] == 2
        assert snapshot["hints_replayed"] == 1
        assert snapshot["breaker_opens"] == 1


class TestWorkloadShape:
    def test_key_weights_normalised_and_skewed(self):
        weights = key_weights(10, 1.0)
        assert weights.sum() == pytest.approx(1.0)
        assert weights[0] > weights[-1]
        uniform = key_weights(10, 0.0)
        assert uniform == pytest.approx(np.full(10, 0.1))

    def test_schedule_respects_mix_and_seed(self):
        config = WorkloadConfig(ops=2000, read_fraction=0.75, keys=8, skew=0.0)
        schedule = build_schedule(np.random.default_rng(0), config)
        assert schedule == build_schedule(np.random.default_rng(0), config)
        reads = sum(1 for kind, _ in schedule if kind == "read")
        assert reads / len(schedule) == pytest.approx(0.75, abs=0.05)
        assert {key for _, key in schedule} <= {f"k{i:04d}" for i in range(8)}

    def test_config_validation(self):
        with pytest.raises(ServiceError):
            WorkloadConfig(ops=-1).validate()
        with pytest.raises(ServiceError):
            WorkloadConfig(read_fraction=1.5).validate()
        with pytest.raises(ServiceError):
            WorkloadConfig(clients=0).validate()
        with pytest.raises(ServiceError):
            run_kv_benchmark(MajorityQuorumSystem.of_size(3), bogus_option=1)


class TestBenchmark:
    def test_seeded_runs_are_bit_identical(self):
        reports = [
            run_kv_benchmark(
                HierarchicalTriangle.of_size(15), seed=0, ops=300, crash_rate=0.1
            )
            for _ in range(2)
        ]
        first, second = (json.dumps(r.to_dict(), sort_keys=True) for r in reports)
        assert first == second

    def test_different_seeds_differ(self):
        a = run_kv_benchmark(MajorityQuorumSystem.of_size(5), seed=0, ops=200)
        b = run_kv_benchmark(MajorityQuorumSystem.of_size(5), seed=1, ops=200)
        assert json.dumps(a.to_dict(), sort_keys=True) != json.dumps(
            b.to_dict(), sort_keys=True
        )

    def test_htriang_observed_load_within_15pct_of_lp(self):
        # The acceptance criterion: `quorumtool kvbench h-triang:15
        # --ops 1000 --seed 0` reports per-element observed load within
        # 15% of the LP-optimal load from analysis/load.py.
        system = HierarchicalTriangle.of_size(15)
        report = run_kv_benchmark(system, seed=0, ops=1000)
        deviation = report.load_deviation()
        assert deviation["max_relative_error"] < 0.15
        assert report.lp_load == pytest.approx(system.load())
        assert report.metrics.success_rate == 1.0

    def test_majority_vs_htriang_load_advantage(self):
        # The paper's punchline served end-to-end: the busiest element of
        # majority:15 carries ~0.53 of the traffic, h-triang:15 only ~1/3.
        majority = run_kv_benchmark(MajorityQuorumSystem.of_size(15), seed=0, ops=400)
        htriang = run_kv_benchmark(HierarchicalTriangle.of_size(15), seed=0, ops=400)
        assert majority.observed_loads.max() > htriang.observed_loads.max() + 0.1

    def test_crash_rate_run_stays_available_and_recovers(self):
        system = HierarchicalTriangle.of_size(15)
        report = run_kv_benchmark(
            system, seed=0, ops=400, crash_rate=0.1, ops_per_epoch=40
        )
        metrics = report.metrics
        # F_0.1(h-triang:15) ~ 7e-4: with retries across epochs, nearly
        # every op completes, and the failure paths actually ran.
        assert metrics.success_rate > 0.97
        assert metrics.unavailable > 0
        assert metrics.ops_attempted == 400
