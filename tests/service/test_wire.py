"""Tests for repro.service.wire: the binary wire protocol v2 codec.

Covers the message codec (struct fast paths and the OP_JSON escape
hatch), frame packing/splitting, the incremental decoder's handling of
partial/oversized/garbage input, version negotiation, and the op-model
parity contract that keeps the binary wire and the simulated transports
speaking one op vocabulary.
"""

import asyncio

import pytest

from repro.core.errors import ServiceError
from repro.runtime.clock import VirtualClock, run_virtual
from repro.service import Replica, SimTransport
from repro.service import wire
from repro.service.wire import (
    FrameDecoder,
    WireError,
    assert_op_roundtrip,
    decode_request,
    decode_response,
    encode_request,
    encode_response,
    hello_frame,
    negotiate,
    pack_frame,
    pack_frames,
    roundtrip_request,
    roundtrip_response,
)

#: One request per op kind, in canonical replica shape, plus the shapes
#: that must fall back to the OP_JSON escape hatch.
REQUESTS = [
    {"op": "read", "key": "k0001"},
    {"op": "read", "key": "clé-ünïcode-❤"},
    {"op": "write", "key": "k", "value": "v", "counter": 3, "writer": 1},
    {"op": "write", "key": "k", "value": None, "counter": 0, "writer": 0},
    {"op": "write", "key": "k", "value": {"nested": [1, 2.5, None]},
     "counter": -1, "writer": -1},
    {"op": "repair", "key": "k", "value": [1, 2], "counter": 9, "writer": 4},
    {"op": "ping"},
    {"op": "keys"},
    {"op": "join", "coordinator": 7, "ttl": 5000},
    # Escape-hatch shapes: unknown op, extra fields, non-string key.
    {"op": "snapshot", "since": 12},
    {"op": "read", "key": "k", "hint": True},
    {"op": "write", "key": 5, "value": "v", "counter": 1, "writer": 1},
]

RESPONSES = [
    {"ok": True, "replica": 0, "value": "v", "counter": 3, "writer": 1},
    {"ok": True, "replica": 2, "value": None, "counter": 0, "writer": -1},
    {"ok": True, "replica": 1, "applied": True, "counter": 4, "writer": 2},
    {"ok": True, "replica": 1, "applied": False, "counter": 9, "writer": 3},
    {"ok": True, "replica": 3},
    {"ok": True, "replica": 0, "granted": True, "ttl": 5000},
    {"ok": True, "replica": 0, "keys": ["a", "b"]},
    {"ok": False, "replica": 4, "error": "write needs key/counter/writer"},
    {"ok": False, "error": "bad json: boom"},  # no replica field at all
]


class TestMessageCodec:
    @pytest.mark.parametrize("request_dict", REQUESTS, ids=repr)
    def test_request_round_trips_byte_exactly(self, request_dict):
        assert roundtrip_request(request_dict) == request_dict

    @pytest.mark.parametrize("payload", RESPONSES, ids=repr)
    def test_response_round_trips_byte_exactly(self, payload):
        assert roundtrip_response(payload) == payload

    def test_rpc_ids_survive_and_address_the_message(self):
        for rpc_id in (0, 1, 0xFFFF_FFFF):
            encoded = encode_request(rpc_id, {"op": "ping"})
            decoded_id, _, _ = decode_request(memoryview(encoded), 0)
            assert decoded_id == rpc_id
            encoded = encode_response(rpc_id, {"ok": True, "replica": 0})
            decoded_id, _, _ = decode_response(memoryview(encoded), 0)
            assert decoded_id == rpc_id

    def test_hot_ops_avoid_the_json_escape_hatch(self):
        # The fast path matters for perf: canonical shapes must NOT be
        # tagged OP_JSON (byte 4 is the op kind in every message).
        for request_dict, kind in [
            ({"op": "read", "key": "k"}, 1),
            ({"op": "write", "key": "k", "value": 1, "counter": 1, "writer": 1}, 2),
            ({"op": "ping"}, 5),
        ]:
            assert encode_request(0, request_dict)[4] == kind
        assert encode_request(0, {"op": "snapshot"})[4] == wire.OP_JSON

    def test_messages_concatenate_and_decode_sequentially(self):
        blob = b"".join(encode_request(i, req) for i, req in enumerate(REQUESTS))
        view = memoryview(blob)
        offset = 0
        for expected_id, expected in enumerate(REQUESTS):
            rpc_id, decoded, offset = decode_request(view, offset)
            assert rpc_id == expected_id
            assert decoded == expected
        assert offset == len(blob)

    def test_truncated_message_raises_wire_error(self):
        encoded = encode_request(
            1, {"op": "write", "key": "k", "value": "v", "counter": 1, "writer": 1}
        )
        with pytest.raises(WireError):
            decode_request(memoryview(encoded[: len(encoded) - 1]), 0)

    def test_unknown_op_kind_raises_wire_error(self):
        bogus = bytes([0, 0, 0, 1, 200]) + b"x" * 8
        with pytest.raises(WireError):
            decode_request(memoryview(bogus), 0)


class TestFrames:
    def test_pack_frame_round_trips_through_the_decoder(self):
        messages = [encode_request(i, req) for i, req in enumerate(REQUESTS)]
        frame = pack_frame(messages)
        decoder = FrameDecoder()
        frames = decoder.feed(frame)
        assert len(frames) == 1
        version, flags, count, body = frames[0]
        assert version == wire.VERSION
        assert flags == 0
        assert count == len(messages)
        assert bytes(body) == b"".join(messages)

    def test_partial_frame_across_many_reads(self):
        # Satellite: a frame split at every possible byte boundary must
        # decode once complete — header split anywhere, body anywhere.
        messages = [encode_request(7, {"op": "read", "key": "k"})]
        frame = pack_frame(messages)
        decoder = FrameDecoder()
        for boundary in range(1, len(frame)):
            assert decoder.feed(frame[:boundary]) == []
            assert decoder.pending_bytes == boundary
            frames = decoder.feed(frame[boundary:])
            assert len(frames) == 1
            assert decoder.pending_bytes == 0

    def test_byte_by_byte_feed_yields_every_frame(self):
        frame = pack_frame([encode_request(1, {"op": "ping"})]) * 3
        decoder = FrameDecoder()
        collected = []
        for i in range(len(frame)):
            collected.extend(decoder.feed(frame[i : i + 1]))
        assert len(collected) == 3
        assert decoder.frames_decoded == 3

    def test_multiple_frames_in_one_read(self):
        frames_in = [pack_frame([encode_request(i, {"op": "ping"})]) for i in range(4)]
        decoder = FrameDecoder()
        assert len(decoder.feed(b"".join(frames_in))) == 4

    def test_oversized_frame_is_rejected(self):
        header = wire.HEADER.pack(
            wire.MAGIC, wire.VERSION, 0, wire.MAX_FRAME_BYTES + 1, 1
        )
        decoder = FrameDecoder()
        with pytest.raises(WireError, match="oversized"):
            decoder.feed(header)

    def test_garbage_magic_is_rejected_not_buffered(self):
        decoder = FrameDecoder()
        with pytest.raises(WireError, match="magic"):
            decoder.feed(b"GET / HTTP/1.1\r\n")

    def test_pack_frame_refuses_bodies_over_the_cap(self):
        big = b"x" * (wire.MAX_FRAME_BYTES + 1)
        with pytest.raises(WireError):
            pack_frame([big])

    def test_pack_frames_splits_at_the_body_cap(self, monkeypatch):
        message = encode_request(0, {"op": "read", "key": "k" * 10})
        monkeypatch.setattr(wire, "MAX_FRAME_BYTES", len(message) * 2)
        frames = pack_frames([message] * 5)
        assert len(frames) == 3  # 2 + 2 + 1
        decoder = FrameDecoder()
        counts = [count for _, _, count, _ in decoder.feed(b"".join(frames))]
        assert counts == [2, 2, 1]

    def test_pack_frames_refuses_one_message_over_the_cap(self, monkeypatch):
        message = encode_request(0, {"op": "read", "key": "k" * 64})
        monkeypatch.setattr(wire, "MAX_FRAME_BYTES", len(message) - 1)
        with pytest.raises(WireError):
            pack_frames([message])


class TestNegotiation:
    def test_hello_frame_shape(self):
        frame = hello_frame()
        decoder = FrameDecoder()
        ((version, flags, count, body),) = decoder.feed(frame)
        assert version == wire.VERSION
        assert flags & wire.FLAG_HELLO
        assert count == 0
        assert bytes(body) == bytes([wire.MIN_VERSION, wire.VERSION])

    def test_negotiate_picks_highest_common_version(self):
        assert negotiate(wire.MIN_VERSION, wire.VERSION) == wire.VERSION
        assert negotiate(1, wire.VERSION + 5) == wire.VERSION

    def test_negotiate_rejects_disjoint_ranges(self):
        assert negotiate(wire.VERSION + 1, wire.VERSION + 3) == 0
        assert negotiate(0, wire.MIN_VERSION - 1) == 0


class TestOpModelParity:
    def test_assert_op_roundtrip_accepts_the_live_vocabulary(self):
        replica = Replica(0)
        for request_dict in REQUESTS:
            payload = replica.handle(dict(request_dict))
            assert_op_roundtrip(request_dict, payload)

    def test_assert_op_roundtrip_raises_on_drift(self):
        # Tuples don't survive JSON — exactly the drift the check exists
        # to catch before it reaches a socket.
        with pytest.raises(ServiceError, match="drift"):
            assert_op_roundtrip({"op": "probe", "at": (1, 2)}, {"ok": True})

    def test_sim_transport_wire_check_is_invisible_to_results(self):
        def run(wire_check):
            clock = VirtualClock()
            transport = SimTransport(
                [Replica(i) for i in range(3)],
                clock=clock,
                seed=5,
                wire_check=wire_check,
            )

            async def scenario():
                out = []
                for i in range(20):
                    await transport.call(
                        i % 3,
                        {"op": "write", "key": f"k{i % 4}", "value": i,
                         "counter": i, "writer": 0},
                    )
                    reply = await transport.call(i % 3, {"op": "read", "key": f"k{i % 4}"})
                    out.append((reply.payload, reply.latency))
                return out

            return run_virtual(scenario(), clock=clock)

        assert run(wire_check=True) == run(wire_check=False)

    def test_sim_transport_wire_check_catches_non_wire_ops(self):
        clock = VirtualClock()
        transport = SimTransport(
            [Replica(0)], clock=clock, seed=0, wire_check=True
        )

        async def scenario():
            await transport.call(0, {"op": "read", "key": "k", "extra": {1, 2}})

        with pytest.raises((ServiceError, TypeError)):
            run_virtual(scenario(), clock=clock)
