"""Tests for the split read/write serving path.

The routing fixture pins both distributions to one support set each —
reads always contact ``{0, 3}``, writes always ``{0, 1}`` — so the
per-path access counters are exact, not statistical.
"""

import asyncio

import pytest

from repro.analysis.byzantine import masking_majority
from repro.analysis.capacity import read_write_capacity
from repro.core import ExplicitQuorumSystem, ReadWriteStrategy, Strategy, Universe
from repro.core.errors import ServiceError
from repro.service import (
    Coordinator,
    InProcessTransport,
    Replica,
    run_capacity_benchmark,
    run_kv_benchmark,
)
from repro.service.chaos import ChaosConfig, run_chaos
from repro.systems import GridQuorumSystem, HierarchicalGrid, MajorityQuorumSystem


def pinned_pair():
    system = ExplicitQuorumSystem(
        Universe.of_size(4), [{0, 1}, {0, 2}], name="pinned4"
    )
    pair = ReadWriteStrategy.from_quorums(
        system, [{0, 3}], [1.0], [{0, 1}], [1.0]
    )
    return system, pair


def build(pair=None, **kwargs):
    system, strategy = pinned_pair()
    if pair is not None:
        system, strategy = pair
    replicas = [Replica(i) for i in range(system.n)]
    transport = InProcessTransport(replicas, seed=0)
    coordinator = Coordinator(system, transport, strategy, seed=0, **kwargs)
    return replicas, transport, coordinator


class TestSplitRouting:
    def test_reads_use_the_read_family_writes_the_write_family(self):
        replicas, transport, coordinator = build(read_repair=False)

        async def scenario():
            await coordinator.write("k", "v")
            result = await coordinator.read("k")
            # Replica 3 never saw the write; replica 0 (the
            # intersection) supplies the newest version.
            assert result.value == "v"
            assert result.stale is False
            await coordinator.drain()

        asyncio.run(scenario())
        # Write touched {0, 1}; read touched {0, 3}.
        assert replicas[0].writes_applied == 1
        assert replicas[1].writes_applied == 1
        assert replicas[2].writes_applied == 0
        assert replicas[3].writes_applied == 0
        metrics = coordinator.metrics
        assert metrics.path_quorum_accesses == {"read": 1, "write": 1}
        assert list(metrics.path_element_accesses["read"]) == [1, 0, 0, 1]
        assert list(metrics.path_element_accesses["write"]) == [1, 1, 0, 0]

    def test_read_repair_rides_the_write_path(self):
        replicas, transport, coordinator = build(read_repair=True)

        async def scenario():
            await coordinator.write("k", "v")
            await coordinator.read("k")
            await coordinator.drain()

        asyncio.run(scenario())
        # The stale read member (replica 3) was repaired via a write
        # quorum, so the value is now durable on the write support too.
        assert coordinator.metrics.read_repairs >= 1

    def test_unsplit_strategy_still_attributes_paths(self):
        system = MajorityQuorumSystem.of_size(3)
        replicas = [Replica(i) for i in range(3)]
        transport = InProcessTransport(replicas, seed=0)
        coordinator = Coordinator(
            system, transport, Strategy.uniform(system), seed=0
        )

        async def scenario():
            await coordinator.write("k", "v")
            await coordinator.read("k")

        asyncio.run(scenario())
        metrics = coordinator.metrics
        # The logical op kind is recorded even though both paths share
        # one distribution.
        assert metrics.path_quorum_accesses == {"read": 1, "write": 1}

    def test_metrics_snapshot_reports_per_path_loads(self):
        _, _, coordinator = build(read_repair=False)

        async def scenario():
            await coordinator.write("k", "v")
            await coordinator.read("k")

        asyncio.run(scenario())
        snapshot = coordinator.metrics.to_dict()
        assert set(snapshot["path_loads"]) == {"read", "write"}
        read_loads = snapshot["path_loads"]["read"]["observed_loads"]
        assert read_loads[3] == pytest.approx(1.0)
        assert read_loads[1] == pytest.approx(0.0)


class TestByzantineValidation:
    def test_shallow_split_pair_is_rejected_for_voted_reads(self):
        system = masking_majority(5, 1)
        # Default LP: dual reads intersect writes in only one element —
        # not enough for 2b+1 = 3 voting.
        shallow = read_write_capacity(system, read_fraction=0.9).strategy
        assert shallow.min_read_write_intersection() < 3
        replicas = [Replica(i) for i in range(system.n)]
        transport = InProcessTransport(replicas, seed=0)
        with pytest.raises(ServiceError, match="too shallow"):
            Coordinator(
                system, transport, shallow, seed=0, byzantine_b=1
            )

    def test_min_intersection_pair_is_accepted(self):
        system = masking_majority(5, 1)
        deep = read_write_capacity(
            system, read_fraction=0.9, min_intersection=3
        ).strategy
        replicas = [Replica(i) for i in range(system.n)]
        transport = InProcessTransport(replicas, seed=0)
        coordinator = Coordinator(
            system, transport, deep, seed=0, byzantine_b=1
        )
        assert coordinator.rw_strategy.min_read_write_intersection() >= 3


class TestReadWriteBenchmarks:
    def test_kv_benchmark_read_write_report(self):
        report = run_kv_benchmark(
            GridQuorumSystem(3, 3), read_write=True, ops=120, clients=2
        )
        assert report.read_write
        assert report.predicted_capacity == pytest.approx(1.0 / report.lp_load)
        snapshot = report.to_dict()
        assert snapshot["read_write"] is True
        assert snapshot["predicted_capacity"] == pytest.approx(
            report.predicted_capacity
        )
        assert snapshot["ops"]["failed"] == 0

    def test_capacity_benchmark_is_seed_deterministic(self):
        system = GridQuorumSystem(3, 3)
        runs = [
            run_capacity_benchmark(system, seed=5, ops=150) for _ in range(2)
        ]
        assert runs[0] == runs[1]
        assert runs[0]["virtual_elapsed_ms"] > 0

    def test_split_beats_unified_on_read_heavy_grid(self):
        system = HierarchicalGrid.halving(4, 4)
        split = run_capacity_benchmark(
            system, read_write=True, read_fraction=0.9, ops=300
        )
        unified = run_capacity_benchmark(
            system, read_write=False, read_fraction=0.9, ops=300
        )
        assert split["ops_failed"] == 0 and unified["ops_failed"] == 0
        assert (
            split["observed_ops_per_sec"]
            >= 1.3 * unified["observed_ops_per_sec"]
        )
        # Observed throughput tracks the LP prediction.
        for run in (split, unified):
            assert run["observed_over_predicted"] == pytest.approx(
                1.0, abs=0.25
            )


class TestReadWriteChaos:
    def test_invariants_hold_over_the_split_path_under_crashes(self):
        report = run_chaos(
            HierarchicalGrid.halving(4, 4),
            seed=2,
            config=ChaosConfig(ops=200, read_write=True),
        )
        assert report.ok, report.violations

    def test_masking_voted_reads_stay_clean_with_split_serving(self):
        report = run_chaos(
            masking_majority(5, 1),
            seed=4,
            config=ChaosConfig(
                ops=150,
                read_write=True,
                byzantine_b=1,
                byzantine_liars=1,
                crash_rate=0.05,
            ),
        )
        assert report.ok, report.violations
        assert report.config.read_write

    def test_read_write_runs_are_seed_deterministic(self):
        system = GridQuorumSystem(3, 3)
        runs = [
            run_chaos(
                system,
                seed=9,
                config=ChaosConfig(ops=120, read_write=True),
                mode="sim",
            ).to_dict()
            for _ in range(2)
        ]
        assert runs[0] == runs[1]
