"""Masking-quorum serving path: startup validation, voted reads, liar
detection, and quorum leases (the Byzantine-tolerant coordinator)."""

import asyncio

import pytest

from repro.analysis.byzantine import boost, masking_majority
from repro.core import Strategy
from repro.core.errors import ServiceError
from repro.service import (
    ByzantineFault,
    Coordinator,
    CrashFault,
    FaultSchedule,
    FaultyTransport,
    InProcessTransport,
    OperationFailed,
    Replica,
    Window,
    make_replicas,
)
from repro.systems import MajorityQuorumSystem


def build_masking_service(
    *,
    n=5,
    b=1,
    liars=frozenset(),
    mode="wrong_value",
    quorum=None,
    registry=None,
    **coordinator_kwargs,
):
    """A masking-majority stack with ``liars`` lying from tick 0."""
    system = masking_majority(n, b)
    replicas = make_replicas(system)
    inner = InProcessTransport(replicas, seed=0)
    rules = (
        [ByzantineFault(frozenset(liars), Window(0.0), mode=mode)] if liars else []
    )
    transport = FaultyTransport(
        inner, FaultSchedule(rules), seed=0, fabricated_registry=registry
    )
    strategy = Strategy.single(system, quorum) if quorum is not None else None
    coordinator = Coordinator(
        system,
        transport,
        strategy,
        seed=0,
        byzantine_b=b,
        **coordinator_kwargs,
    )
    return replicas, transport, coordinator


class TestStartupValidation:
    def test_masking_majority_accepted(self):
        _, _, coordinator = build_masking_service()
        assert coordinator.byzantine_b == 1

    def test_thin_system_rejected_with_boost_hint(self):
        system = MajorityQuorumSystem.of_size(3)
        replicas = make_replicas(system)
        transport = InProcessTransport(replicas, seed=0)
        with pytest.raises(ServiceError) as info:
            Coordinator(system, transport, seed=0, byzantine_b=1)
        assert "boost" in str(info.value)
        assert "0-masking" in str(info.value)

    def test_boosted_system_accepted(self):
        system = boost(MajorityQuorumSystem.of_size(3), 1)
        replicas = make_replicas(system)
        transport = InProcessTransport(replicas, seed=0)
        Coordinator(system, transport, seed=0, byzantine_b=1)  # must not raise

    def test_negative_parameters_rejected(self):
        system = MajorityQuorumSystem.of_size(3)
        replicas = make_replicas(system)
        transport = InProcessTransport(replicas, seed=0)
        with pytest.raises(ServiceError):
            Coordinator(system, transport, seed=0, byzantine_b=-1)
        with pytest.raises(ServiceError):
            Coordinator(system, transport, seed=0, lease_ttl=-1)


class TestVotedReads:
    def test_round_trip_with_one_liar(self):
        registry = set()
        replicas, _, coordinator = build_masking_service(
            liars={2}, registry=registry
        )

        async def scenario():
            for index in range(10):
                key = f"k{index % 3}"
                await coordinator.write(key, f"v{index}")
                result = await coordinator.read(key)
                assert result.value == f"v{index}"
                assert not result.stale
                assert result.value not in registry

        asyncio.run(scenario())
        assert coordinator.metrics.vote_rounds > 0
        assert coordinator.metrics.vote_failures == 0

    def test_liar_is_detected_and_suspected(self):
        replicas, _, coordinator = build_masking_service(liars={2})

        async def scenario():
            for index in range(10):
                await coordinator.write("k", f"v{index}")
                await coordinator.read("k")

        asyncio.run(scenario())
        assert coordinator.lied_replicas == {2}
        assert 2 in coordinator.suspicion_history
        assert coordinator.metrics.lies_detected > 0
        # Fake-acked writes never touched the liar's store.
        assert replicas[2].writes_applied == 0

    def test_each_mode_is_masked(self):
        for mode in ("wrong_value", "stale_timestamp", "equivocate"):
            registry = set()
            replicas, _, coordinator = build_masking_service(
                liars={1}, mode=mode, registry=registry
            )

            async def scenario():
                for index in range(8):
                    await coordinator.write("k", f"v{index}")
                    result = await coordinator.read("k")
                    assert result.value == f"v{index}", mode
                    assert result.value not in registry

            asyncio.run(scenario())

    def test_colluding_liars_beyond_budget_win_the_vote(self):
        # The safety boundary, demonstrated: b+1 = 2 colluding liars in a
        # fixed read quorum out-vote nobody but tie the 2 honest replies,
        # and the deliberately adversarial tie-break accepts their bytes.
        registry = set()
        replicas, _, coordinator = build_masking_service(
            liars={0, 1}, quorum={0, 1, 2, 3}, registry=registry
        )
        for replica in replicas:
            replica.apply_write("k", "real", 1, 0)

        result = asyncio.run(coordinator.read("k"))
        assert result.value in registry  # fabrication served: the b+1 case

    def test_no_quorate_candidate_fails_the_read(self):
        replicas, _, coordinator = build_masking_service(
            quorum={0, 1, 2, 3}, max_attempts=2
        )
        # Four-way divergence: no timestamp+value gets b+1 = 2 votes.
        for rid, replica in enumerate(replicas[:4]):
            replica.apply_write("k", f"divergent-{rid}", rid + 1, rid)

        with pytest.raises(OperationFailed):
            asyncio.run(coordinator.read("k"))
        assert coordinator.metrics.vote_failures > 0

    def test_crash_mode_unchanged_when_b_is_zero(self):
        _, _, coordinator = build_masking_service(b=0)

        async def scenario():
            await coordinator.write("k", "v")
            result = await coordinator.read("k")
            assert result.value == "v"

        asyncio.run(scenario())
        assert coordinator.metrics.vote_rounds == 0


class TestQuorumLeases:
    def test_leases_are_granted_and_renewed(self):
        system = MajorityQuorumSystem.of_size(3)
        replicas = make_replicas(system)
        transport = InProcessTransport(replicas, seed=0)
        strategy = Strategy.single(system, {0, 1})
        coordinator = Coordinator(
            system, transport, strategy, seed=0, lease_ttl=3
        )

        async def scenario():
            for index in range(9):
                await coordinator.write("k", index)

        asyncio.run(scenario())
        metrics = coordinator.metrics
        assert metrics.lease_renewals >= 2
        assert metrics.lease_expiries >= 1
        assert metrics.rejoins_failed == 0
        # The replicas really served the join handshakes.
        assert replicas[0].joins_served == metrics.lease_renewals
        assert replicas[0].lessees[coordinator.coordinator_id] == 3

    def test_expired_lease_forces_rejoin(self):
        system = MajorityQuorumSystem.of_size(3)
        replicas = make_replicas(system)
        transport = InProcessTransport(replicas, seed=0)
        strategy = Strategy.single(system, {0, 1})
        coordinator = Coordinator(
            system, transport, strategy, seed=0, lease_ttl=100
        )

        async def scenario():
            await coordinator.write("k", 0)
            first = replicas[0].joins_served
            await coordinator.write("k", 1)  # lease still live: no join
            assert replicas[0].joins_served == first

        asyncio.run(scenario())
        assert coordinator.metrics.lease_renewals == 1
        assert coordinator.metrics.lease_expiries == 0

    def test_unreachable_member_fails_the_handshake(self):
        system = MajorityQuorumSystem.of_size(3)
        replicas = make_replicas(system)
        inner = InProcessTransport(replicas, seed=0)
        schedule = FaultSchedule([CrashFault(frozenset({0}), Window(0.0))])
        transport = FaultyTransport(inner, schedule, seed=0)
        strategy = Strategy.single(system, {0, 1})
        coordinator = Coordinator(
            system, transport, strategy, seed=0, lease_ttl=5, max_attempts=2
        )

        with pytest.raises(OperationFailed):
            asyncio.run(coordinator.write("k", "v"))
        assert coordinator.metrics.rejoins_failed >= 1
        assert coordinator.metrics.lease_renewals == 0
        assert replicas[1].joins_served > 0  # the live member was asked

    def test_join_op_validates_arguments(self):
        replica = Replica(0)
        ok = replica.handle({"op": "join", "coordinator": 7, "ttl": 4})
        assert ok["ok"] and ok["granted"] and ok["ttl"] == 4
        assert not replica.handle({"op": "join"})["ok"]
        assert not replica.handle(
            {"op": "join", "coordinator": 1, "ttl": -2}
        )["ok"]
        assert replica.joins_served == 1
        assert replica.lessees == {7: 4}
