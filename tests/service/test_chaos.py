"""Tests for repro.service.chaos: invariants, reproducibility, reports."""

import json

import pytest

from repro.core.errors import ServiceError
from repro.service import (
    ChaosConfig,
    ChaosReport,
    CrashFault,
    FaultSchedule,
    PartitionFault,
    Window,
    run_chaos,
)
from repro.service.chaos import _plan
from repro.systems import HierarchicalTriangle, MajorityQuorumSystem

import numpy as np


def small_config(**overrides):
    base = dict(ops=120, keys=4, clients=2, crash_rate=0.2, epoch=20)
    base.update(overrides)
    return ChaosConfig(**base)


class TestSafeRuns:
    def test_majority_run_holds_every_invariant(self):
        report = run_chaos(
            MajorityQuorumSystem.of_size(5), seed=3, config=small_config()
        )
        assert report.ok
        assert report.violations == []
        ops = report.operations
        assert ops["preloads"] == 4
        total = (
            ops["reads_ok"]
            + ops["reads_degraded"]
            + ops["reads_failed"]
            + ops["writes_ok"]
            + ops["writes_failed"]
        )
        assert total == 120
        assert ops["writes_ok"] > 0 and ops["reads_ok"] > 0
        # Faults were actually injected, not a fair-weather pass.
        assert sum(report.injected.values()) > 0

    def test_hierarchical_run_reports_availability_comparison(self):
        report = run_chaos(
            HierarchicalTriangle.of_size(15), seed=7, config=small_config()
        )
        assert report.ok
        availability = report.availability
        assert 0.0 <= availability["measured"] <= 1.0
        assert 0.0 <= availability["exact"] <= 1.0
        assert availability["crash_rate"] == 0.2
        assert availability["abs_error"] == pytest.approx(
            abs(availability["measured"] - availability["exact"])
        )
        assert 0.0 <= availability["op_success_rate"] <= 1.0

    def test_bit_reproducible_per_seed(self):
        system = MajorityQuorumSystem.of_size(5)
        first = run_chaos(system, seed=11, config=small_config())
        second = run_chaos(system, seed=11, config=small_config())
        different = run_chaos(system, seed=12, config=small_config())
        dump = lambda report: json.dumps(report.to_dict(), sort_keys=True)
        assert dump(first) == dump(second)
        assert dump(first) != dump(different)


class TestUnsafeRuns:
    def test_split_brain_is_detected(self):
        report = run_chaos(
            MajorityQuorumSystem.of_size(5),
            seed=7,
            config=small_config(ops=200, unsafe_partial_writes=True),
        )
        assert not report.ok
        kinds = {violation["invariant"] for violation in report.violations}
        # Partial-quorum acks across the partition manufacture stale reads
        # (and possibly lost acknowledged writes).
        assert kinds <= {
            "no-stale-unflagged-read",
            "acked-write-durable",
            "version-integrity",
        }
        assert "no-stale-unflagged-read" in kinds
        snapshot = report.to_dict()
        assert snapshot["invariants"]["ok"] is False
        assert snapshot["invariants"]["violations"] == report.violations

    def test_unsafe_mode_needs_two_clients(self):
        with pytest.raises(ServiceError):
            run_chaos(
                MajorityQuorumSystem.of_size(3),
                config=small_config(clients=1, unsafe_partial_writes=True),
            )


class TestExplicitSchedules:
    def test_caller_schedule_overrides_randomized_faults(self):
        # A fault-free schedule: perfect availability, every op succeeds.
        report = run_chaos(
            MajorityQuorumSystem.of_size(5),
            seed=0,
            config=small_config(crash_rate=0.0),
            schedule=FaultSchedule(),
        )
        assert report.ok
        assert report.availability["measured"] == 1.0
        assert report.availability["exact"] == 1.0
        assert report.operations["reads_failed"] == 0
        assert report.operations["writes_failed"] == 0
        assert sum(report.injected.values()) == 0

    def test_permanent_minority_crash_is_survivable(self):
        # Two of five replicas down for the whole run: a majority quorum
        # always exists, so safety and liveness both hold.
        schedule = FaultSchedule([CrashFault(frozenset({0, 1}), Window(0.0))])
        report = run_chaos(
            MajorityQuorumSystem.of_size(5),
            seed=5,
            config=small_config(),
            schedule=schedule,
        )
        assert report.ok
        assert report.injected["crash"] > 0
        assert report.availability["measured"] == 1.0  # {2,3,4} is a quorum

    def test_degraded_reads_surface_in_operation_counts(self):
        # Partition away a majority for a mid-run window: no quorum can
        # complete, but the two reachable replicas still answer, so the
        # opt-in degraded path serves flagged best-effort reads.
        schedule = FaultSchedule(
            [PartitionFault(frozenset({0, 1, 2}), Window(30.0, 60.0))]
        )
        report = run_chaos(
            MajorityQuorumSystem.of_size(5),
            seed=2,
            config=small_config(timeout=20.0, max_attempts=2),
            schedule=schedule,
        )
        assert report.ok  # degraded reads are flagged, so never violations
        assert report.operations["reads_degraded"] > 0


class TestPlanAndReport:
    def test_plan_respects_read_fraction_extremes(self):
        rng = np.random.default_rng(0)
        config = small_config(read_fraction=0.0)
        assert all(kind == "write" for _, kind, _ in _plan(rng, config))
        config = small_config(read_fraction=1.0)
        assert all(kind == "read" for _, kind, _ in _plan(rng, config))

    def test_plan_round_robins_clients(self):
        rng = np.random.default_rng(0)
        plan = _plan(rng, small_config(clients=3, ops=9))
        assert [client for client, _, _ in plan] == [0, 1, 2] * 3

    def test_report_dict_shape(self):
        report = run_chaos(
            MajorityQuorumSystem.of_size(3), seed=1, config=small_config(ops=40)
        )
        snapshot = report.to_dict()
        assert snapshot["system"] == "majority"
        assert snapshot["n"] == 3
        assert snapshot["seed"] == 1
        assert snapshot["config"]["ops"] == 40
        assert snapshot["schedule"]["rules"] == len(report.schedule)
        assert snapshot["invariants"]["checked"] == [
            "acked-write-durable",
            "no-stale-unflagged-read",
            "version-integrity",
            "replica-ts-monotone",
        ]
        assert "metrics" in snapshot
        json.dumps(snapshot)  # fully serialisable

    def test_config_validation(self):
        with pytest.raises(ServiceError):
            ChaosConfig(ops=0).validate()
        with pytest.raises(ServiceError):
            ChaosConfig(read_fraction=1.5).validate()
        with pytest.raises(ServiceError):
            ChaosConfig(keys=0).validate()
        with pytest.raises(ServiceError):
            ChaosConfig(crash_rate=-0.1).validate()
        with pytest.raises(ServiceError):
            ChaosConfig(epoch=0).validate()
        with pytest.raises(ServiceError):
            ChaosConfig(byzantine_b=-1).validate()
        with pytest.raises(ServiceError):
            ChaosConfig(byzantine_liars=-1).validate()
        with pytest.raises(ServiceError):
            ChaosConfig(byzantine_mode="gaslight").validate()
        with pytest.raises(ServiceError):
            ChaosConfig(lease_ttl=-1).validate()


class TestByzantineChaos:
    def masking_system(self):
        from repro.analysis.byzantine import masking_majority

        return masking_majority(5, 1)

    def byz_config(self, **overrides):
        base = dict(byzantine_b=1, byzantine_liars=1, crash_rate=0.05)
        base.update(overrides)
        return small_config(**base)

    def test_within_budget_stays_clean_and_detects_lies(self):
        for seed in (0, 1):
            report = run_chaos(
                self.masking_system(), seed=seed, config=self.byz_config(),
                mode="sim",
            )
            assert report.ok, report.violations
            assert len(report.byzantine_replicas) == 1
            assert report.metrics.lies_detected > 0
            lied = set(report.byzantine_replicas)
            # Every caught liar fed the suspicion machinery (invariant 7).
            assert report.injected["byz_wrong_value"] > 0

    def test_each_mode_stays_clean_within_budget(self):
        for mode in ("wrong_value", "stale_timestamp", "equivocate"):
            report = run_chaos(
                self.masking_system(),
                seed=2,
                config=self.byz_config(byzantine_mode=mode),
                mode="sim",
            )
            assert report.ok, (mode, report.violations)

    def test_sim_and_wall_agree_bit_for_bit(self):
        sim = run_chaos(
            self.masking_system(), seed=0, config=self.byz_config(), mode="sim"
        )
        wall = run_chaos(
            self.masking_system(), seed=0, config=self.byz_config(), mode="wall"
        )
        assert sim.hashes == wall.hashes
        assert sim.byzantine_replicas == wall.byzantine_replicas

    def test_over_budget_liars_are_detected_as_violations(self):
        report = run_chaos(
            self.masking_system(),
            seed=0,
            config=self.byz_config(byzantine_liars=2),
            mode="sim",
        )
        assert not report.ok
        assert "byzantine-fabricated-read" in report.violation_counts
        assert report.violation_counts["byzantine-fabricated-read"] > 0

    def test_report_carries_byzantine_invariants_and_counts(self):
        report = run_chaos(
            self.masking_system(), seed=1, config=self.byz_config(), mode="sim"
        )
        snapshot = report.to_dict()
        checked = snapshot["invariants"]["checked"]
        assert "byzantine-fabricated-read" in checked
        assert "lie-detection-sound" in checked
        assert "lie-suspicion-reflected" in checked
        assert snapshot["byzantine_replicas"] == report.byzantine_replicas
        assert snapshot["invariants"]["violation_counts"] == {}
        assert snapshot["metrics"]["byzantine"]["lies_detected"] > 0
        json.dumps(snapshot)  # fully serialisable

    def test_liar_draw_does_not_shift_other_streams(self):
        # The liar set comes from its own named stream: the crash/partition
        # schedule is identical with and without Byzantine faults.
        plain = run_chaos(
            self.masking_system(), seed=4,
            config=small_config(crash_rate=0.05), mode="sim",
        )
        byz = run_chaos(
            self.masking_system(), seed=4, config=self.byz_config(), mode="sim"
        )
        plain_kinds = {
            kind: count
            for kind, count in plain.schedule.to_dict()["by_kind"].items()
        }
        byz_kinds = dict(byz.schedule.to_dict()["by_kind"])
        byz_kinds.pop("byzantine")
        assert plain_kinds == byz_kinds

    def test_leases_run_under_chaos(self):
        report = run_chaos(
            self.masking_system(),
            seed=3,
            config=self.byz_config(lease_ttl=10),
            mode="sim",
        )
        assert report.ok, report.violations
        assert report.metrics.lease_renewals > 0
        snapshot = report.to_dict()
        assert snapshot["metrics"]["leases"]["renewals"] > 0

    def test_too_many_liars_rejected(self):
        with pytest.raises(ServiceError):
            run_chaos(
                self.masking_system(),
                seed=0,
                config=self.byz_config(byzantine_liars=6),
                mode="sim",
            )
