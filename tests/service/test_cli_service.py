"""CLI coverage for the serving layer: kvbench and serve."""

import json

import pytest

from repro.cli import main


class TestKvbench:
    def test_kvbench_reports_loads(self, capsys):
        main(["kvbench", "h-triang:15", "--ops", "200", "--seed", "0"])
        out = capsys.readouterr().out
        assert "observed" in out and "predicted" in out
        assert "success rate" in out
        assert "deviation" in out

    def test_kvbench_is_deterministic(self, capsys):
        main(["kvbench", "majority:5", "--ops", "150", "--seed", "7", "--json"])
        first = capsys.readouterr().out
        main(["kvbench", "majority:5", "--ops", "150", "--seed", "7", "--json"])
        second = capsys.readouterr().out
        assert first == second
        snapshot = json.loads(first)
        assert snapshot["ops"]["attempted"] == 150
        assert snapshot["seed"] == 7

    def test_kvbench_with_crash_rate(self, capsys):
        main([
            "kvbench", "h-triang:15", "--ops", "200", "--seed", "0",
            "--crash-rate", "0.1", "--json",
        ])
        snapshot = json.loads(capsys.readouterr().out)
        assert snapshot["ops"]["success_rate"] > 0.9
        assert snapshot["config"]["crash_rate"] == 0.1

    def test_bad_system_spec_exits(self):
        with pytest.raises(SystemExit):
            main(["kvbench", "not-a-system:3"])


class TestChaos:
    def test_chaos_reports_and_exits_cleanly(self, capsys):
        main([
            "chaos", "--system", "majority:5", "--seed", "3",
            "--ops", "120", "--keys", "4",
        ])
        out = capsys.readouterr().out
        assert "all held" in out
        assert "measured=" in out and "exact=" in out
        assert "fault rules" in out

    def test_chaos_json_is_deterministic(self, capsys):
        argv = [
            "chaos", "--system", "majority:5", "--seed", "9",
            "--ops", "120", "--keys", "4", "--json",
        ]
        main(argv)
        first = capsys.readouterr().out
        main(argv)
        second = capsys.readouterr().out
        assert first == second
        snapshot = json.loads(first)
        assert snapshot["seed"] == 9
        assert snapshot["invariants"]["ok"] is True
        assert snapshot["invariants"]["violations"] == []
        assert 0.0 <= snapshot["availability"]["measured"] <= 1.0

    def test_unsafe_partial_writes_exit_nonzero(self, capsys):
        with pytest.raises(SystemExit) as info:
            main([
                "chaos", "--system", "majority:5", "--seed", "7",
                "--ops", "200", "--unsafe-partial-writes",
            ])
        assert info.value.code == 1
        out = capsys.readouterr().out
        assert "VIOLATION" in out

    def test_chaos_hierarchical_acceptance_run(self, capsys):
        # The issue's acceptance invocation, scaled down in ops.
        main([
            "chaos", "--system", "htriang:15", "--seed", "7", "--ops", "120",
        ])
        out = capsys.readouterr().out
        assert "all held" in out

    def test_bad_chaos_spec_exits(self):
        with pytest.raises(SystemExit):
            main(["chaos", "--system", "not-a-system:3"])


class TestByzantineChaosCli:
    CLEAN = [
        "chaos", "--system", "masking:5x1", "--byzantine", "1", "--liars", "1",
        "--sim", "--ops", "120", "--keys", "4", "--crash-rate", "0.05",
    ]

    def test_masking_spec_builds(self, capsys):
        main(["info", "masking:5x1"])
        out = capsys.readouterr().out
        assert "masking-majority(n=5,b=1)" in out

    def test_within_budget_run_reports_and_exits_cleanly(self, capsys):
        main(self.CLEAN)
        out = capsys.readouterr().out
        assert "all held" in out
        assert "byzantine" in out
        assert "lies detected=" in out

    def test_over_budget_liars_exit_nonzero(self, capsys):
        with pytest.raises(SystemExit) as info:
            main(self.CLEAN[:6] + ["2"] + self.CLEAN[7:])
        assert info.value.code == 1
        out = capsys.readouterr().out
        assert "byzantine-fabricated-read" in out

    def test_thin_system_is_rejected_with_boost_hint(self, capsys):
        with pytest.raises(SystemExit) as info:
            main([
                "chaos", "--system", "htriang:6", "--byzantine", "1",
                "--liars", "1", "--sim", "--ops", "40",
            ])
        assert "boost" in str(info.value)

    def test_boost_flag_thickens_thin_systems(self, capsys):
        main([
            "chaos", "--system", "htriang:6", "--byzantine", "1",
            "--liars", "1", "--boost", "--sim", "--ops", "60",
            "--keys", "4", "--crash-rate", "0.05",
        ])
        out = capsys.readouterr().out
        assert "boosted" in out
        assert "all held" in out

    def test_lease_ttl_surfaces_in_report(self, capsys):
        main(self.CLEAN + ["--lease-ttl", "10"])
        out = capsys.readouterr().out
        assert "leases" in out
        assert "renewals=" in out

    def test_sweep_scorecard_counts_violations_per_invariant(
        self, capsys, tmp_path
    ):
        import json as json_module

        out_path = tmp_path / "byz.json"
        with pytest.raises(SystemExit):
            main(
                self.CLEAN[:6] + ["2"] + self.CLEAN[7:]
                + ["--seeds", "2", "--json-out", str(out_path)]
            )
        payload = json_module.loads(out_path.read_text())
        assert payload["all_ok"] is False
        counts = payload["violations_by_invariant"]
        assert counts["byzantine-fabricated-read"] > 0
        for run in payload["runs"]:
            assert "violation_counts" in run["invariants"]


class TestServe:
    def test_serve_binds_and_exits_after_duration(self, capsys):
        main([
            "serve", "majority:3", "--base-port", "0", "--duration", "0.05",
        ])
        out = capsys.readouterr().out
        assert "serving majority" in out
        assert out.count("replica") == 3
        assert "127.0.0.1:" in out
