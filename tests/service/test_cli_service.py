"""CLI coverage for the serving layer: kvbench and serve."""

import json

import pytest

from repro.cli import main


class TestKvbench:
    def test_kvbench_reports_loads(self, capsys):
        main(["kvbench", "h-triang:15", "--ops", "200", "--seed", "0"])
        out = capsys.readouterr().out
        assert "observed" in out and "predicted" in out
        assert "success rate" in out
        assert "deviation" in out

    def test_kvbench_is_deterministic(self, capsys):
        main(["kvbench", "majority:5", "--ops", "150", "--seed", "7", "--json"])
        first = capsys.readouterr().out
        main(["kvbench", "majority:5", "--ops", "150", "--seed", "7", "--json"])
        second = capsys.readouterr().out
        assert first == second
        snapshot = json.loads(first)
        assert snapshot["ops"]["attempted"] == 150
        assert snapshot["seed"] == 7

    def test_kvbench_with_crash_rate(self, capsys):
        main([
            "kvbench", "h-triang:15", "--ops", "200", "--seed", "0",
            "--crash-rate", "0.1", "--json",
        ])
        snapshot = json.loads(capsys.readouterr().out)
        assert snapshot["ops"]["success_rate"] > 0.9
        assert snapshot["config"]["crash_rate"] == 0.1

    def test_bad_system_spec_exits(self):
        with pytest.raises(SystemExit):
            main(["kvbench", "not-a-system:3"])


class TestChaos:
    def test_chaos_reports_and_exits_cleanly(self, capsys):
        main([
            "chaos", "--system", "majority:5", "--seed", "3",
            "--ops", "120", "--keys", "4",
        ])
        out = capsys.readouterr().out
        assert "all held" in out
        assert "measured=" in out and "exact=" in out
        assert "fault rules" in out

    def test_chaos_json_is_deterministic(self, capsys):
        argv = [
            "chaos", "--system", "majority:5", "--seed", "9",
            "--ops", "120", "--keys", "4", "--json",
        ]
        main(argv)
        first = capsys.readouterr().out
        main(argv)
        second = capsys.readouterr().out
        assert first == second
        snapshot = json.loads(first)
        assert snapshot["seed"] == 9
        assert snapshot["invariants"]["ok"] is True
        assert snapshot["invariants"]["violations"] == []
        assert 0.0 <= snapshot["availability"]["measured"] <= 1.0

    def test_unsafe_partial_writes_exit_nonzero(self, capsys):
        with pytest.raises(SystemExit) as info:
            main([
                "chaos", "--system", "majority:5", "--seed", "7",
                "--ops", "200", "--unsafe-partial-writes",
            ])
        assert info.value.code == 1
        out = capsys.readouterr().out
        assert "VIOLATION" in out

    def test_chaos_hierarchical_acceptance_run(self, capsys):
        # The issue's acceptance invocation, scaled down in ops.
        main([
            "chaos", "--system", "htriang:15", "--seed", "7", "--ops", "120",
        ])
        out = capsys.readouterr().out
        assert "all held" in out

    def test_bad_chaos_spec_exits(self):
        with pytest.raises(SystemExit):
            main(["chaos", "--system", "not-a-system:3"])


class TestServe:
    def test_serve_binds_and_exits_after_duration(self, capsys):
        main([
            "serve", "majority:3", "--base-port", "0", "--duration", "0.05",
        ])
        out = capsys.readouterr().out
        assert "serving majority" in out
        assert out.count("replica") == 3
        assert "127.0.0.1:" in out
