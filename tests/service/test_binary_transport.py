"""Tests for BinaryTcpTransport and the dual-protocol TCP server.

The server sniffs the first byte of every connection: 0x51 (the high
byte of the wire magic) selects binary wire v2, anything else JSON
lines.  These tests drive real localhost sockets — the binary client
against the sniffing server, raw sockets for the malformed-input edge
cases, and a FaultyTransport wrapped around the binary channel.
"""

import asyncio
import json

import pytest

from repro.service import (
    BinaryTcpTransport,
    Replica,
    ReplicaUnavailable,
    RequestTimeout,
    TcpTransport,
    start_tcp_replicas,
)
from repro.service import wire
from repro.service.faults import (
    DropFault,
    DuplicateFault,
    FaultSchedule,
    FaultyTransport,
    Window,
)


async def serve(n=3):
    replicas = [Replica(i) for i in range(n)]
    servers, addresses = await start_tcp_replicas(replicas)
    return replicas, servers, addresses


async def shutdown(transport, servers):
    await transport.close()
    for server in servers:
        server.close()
    for server in servers:
        await server.wait_closed()


class TestBinaryRoundTrip:
    def test_every_op_kind_round_trips(self):
        async def scenario():
            replicas, servers, addresses = await serve()
            transport = BinaryTcpTransport(addresses)
            shadow = Replica(0)  # same op sequence, no sockets
            ops = [
                {"op": "ping"},
                {"op": "write", "key": "k", "value": {"deep": [1, None]},
                 "counter": 1, "writer": 9},
                {"op": "read", "key": "k"},
                {"op": "repair", "key": "k", "value": "patched",
                 "counter": 2, "writer": 3},
                {"op": "read", "key": "k"},
                {"op": "keys"},
                {"op": "join", "coordinator": 4, "ttl": 1000},
                {"op": "read", "key": "missing"},
                {"op": "write", "key": "k"},  # malformed -> error payload
                {"op": "wat"},  # unknown op -> OP_JSON fallback both ways
            ]
            for request in ops:
                reply = await transport.call(0, dict(request))
                assert reply.payload == shadow.handle(dict(request))
            await shutdown(transport, servers)

        asyncio.run(scenario())

    def test_binary_and_json_clients_share_one_port(self):
        async def scenario():
            replicas, servers, addresses = await serve()
            binary = BinaryTcpTransport(addresses)
            jsonl = TcpTransport(addresses)
            ack = await binary.call(
                1, {"op": "write", "key": "k", "value": "v", "counter": 5, "writer": 2}
            )
            assert ack.payload["applied"]
            seen = await jsonl.call(1, {"op": "read", "key": "k"})
            assert seen.payload["value"] == "v"
            assert seen.payload["counter"] == 5
            await binary.close()
            await shutdown(jsonl, servers)

        asyncio.run(scenario())

    def test_concurrent_calls_coalesce_into_frames(self):
        async def scenario():
            replicas, servers, addresses = await serve(n=1)
            transport = BinaryTcpTransport(addresses)
            await transport.call(0, {"op": "ping"})  # dial + HELLO
            replies = await asyncio.gather(
                *(transport.submit(0, {"op": "ping"}) for _ in range(32))
            )
            assert all(r.payload["ok"] for r in replies)
            assert transport.calls == 33
            # The 32-op burst shares one flush window: far fewer frames
            # than ops, and the ratio counters say so.
            assert transport.frames_sent < transport.calls
            assert transport.ops_per_frame > 2.0
            assert transport.coalesced_ops == transport.calls
            assert transport.bytes_per_op > 0
            await shutdown(transport, servers)

        asyncio.run(scenario())

    def test_coalescing_off_frames_each_op(self):
        async def scenario():
            replicas, servers, addresses = await serve(n=1)
            transport = BinaryTcpTransport(addresses, coalesce=False)
            await transport.call(0, {"op": "ping"})
            await asyncio.gather(
                *(transport.submit(0, {"op": "ping"}) for _ in range(8))
            )
            assert transport.frames_sent == transport.calls == 9
            assert transport.ops_per_frame == 1.0
            await shutdown(transport, servers)

        asyncio.run(scenario())

    def test_out_of_order_completion_reaches_the_right_futures(self):
        async def scenario():
            replicas, servers, addresses = await serve()
            transport = BinaryTcpTransport(addresses)
            for i in range(3):
                await transport.call(
                    i, {"op": "write", "key": "who", "value": f"r{i}",
                        "counter": 1, "writer": i}
                )
            replies = await asyncio.gather(
                *(transport.submit(i, {"op": "read", "key": "who"}) for i in range(3))
            )
            assert [r.payload["replica"] for r in replies] == [0, 1, 2]
            assert [r.payload["value"] for r in replies] == ["r0", "r1", "r2"]
            await shutdown(transport, servers)

        asyncio.run(scenario())


class TestServerEdgeCases:
    def test_partial_frames_across_many_writes_still_answer(self):
        # A request frame dribbled one byte per write must be answered
        # once the last byte lands.
        async def scenario():
            replicas, servers, addresses = await serve(n=1)
            host, port = addresses[0]
            reader, writer = await asyncio.open_connection(host, port)
            payload = wire.hello_frame() + wire.pack_frame(
                [wire.encode_request(7, {"op": "ping"})]
            )
            for i in range(len(payload)):
                writer.write(payload[i : i + 1])
                await writer.drain()
            # HELLO reply first, then the pinged response.
            decoder = wire.FrameDecoder()
            frames = []
            while len(frames) < 2:
                frames.extend(decoder.feed(await reader.read(256)))
            version, flags, count, body = frames[1]
            rpc_id, response, _ = wire.decode_response(body, 0)
            assert rpc_id == 7
            assert response["ok"]
            writer.close()
            await writer.wait_closed()
            for server in servers:
                server.close()
                await server.wait_closed()

        asyncio.run(scenario())

    def test_oversized_frame_gets_a_clean_hangup(self):
        async def scenario():
            replicas, servers, addresses = await serve(n=1)
            host, port = addresses[0]
            reader, writer = await asyncio.open_connection(host, port)
            writer.write(
                wire.HEADER.pack(
                    wire.MAGIC, wire.VERSION, 0, wire.MAX_FRAME_BYTES + 1, 1
                )
            )
            await writer.drain()
            # The server must hang up — not buffer a gigabyte, not hang.
            assert await asyncio.wait_for(reader.read(), timeout=5.0) == b""
            writer.close()
            await writer.wait_closed()
            # ...and keep serving other connections afterwards.
            transport = BinaryTcpTransport(addresses)
            assert (await transport.call(0, {"op": "ping"})).payload["ok"]
            await shutdown(transport, servers)

        asyncio.run(scenario())

    def test_json_client_still_served_after_binary_garbage_peer(self):
        async def scenario():
            replicas, servers, addresses = await serve(n=1)
            host, port = addresses[0]
            # A binary-looking connection that degenerates into garbage.
            reader, writer = await asyncio.open_connection(host, port)
            writer.write(b"\x51" + b"\xde\xad\xbe\xef" * 8)
            await writer.drain()
            assert await asyncio.wait_for(reader.read(), timeout=5.0) == b""
            writer.close()
            await writer.wait_closed()
            transport = TcpTransport(addresses)
            assert (await transport.call(0, {"op": "ping"})).payload["ok"]
            await shutdown(transport, servers)

        asyncio.run(scenario())


class TestClientEdgeCases:
    def test_garbage_from_server_reconnects_not_hangs(self):
        # A server that answers the HELLO with garbage: the client must
        # fail the in-flight call promptly, tear the channel down, and
        # dial fresh on the next call — not hang on a poisoned channel.
        async def scenario():
            connections = []

            async def fake_server(reader, writer):
                connections.append(writer)
                if len(connections) == 1:
                    writer.write(b"not a frame at all")
                    await writer.drain()
                    writer.close()
                    return
                # Behave properly from the second connection on.  The
                # client pipelines its first request behind the HELLO,
                # so parse frames instead of skipping a byte count.
                writer.write(wire.hello_frame())
                decoder = wire.FrameDecoder()
                while True:
                    data = await reader.read(4096)
                    if not data:
                        break
                    for _, flags, count, body in decoder.feed(data):
                        if flags & wire.FLAG_HELLO:
                            continue
                        offset = 0
                        out = []
                        for _ in range(count):
                            rpc_id, request, offset = wire.decode_request(
                                body, offset
                            )
                            out.append(
                                wire.encode_response(
                                    rpc_id, {"ok": True, "replica": 0}
                                )
                            )
                        for frame in wire.pack_frames(out):
                            writer.write(frame)
                writer.close()

            server = await asyncio.start_server(fake_server, "127.0.0.1", 0)
            port = server.sockets[0].getsockname()[1]
            transport = BinaryTcpTransport({0: ("127.0.0.1", port)})
            with pytest.raises((ReplicaUnavailable, RequestTimeout)):
                await asyncio.wait_for(
                    transport.call(0, {"op": "ping"}, timeout=2_000.0), timeout=5.0
                )
            reply = await asyncio.wait_for(
                transport.call(0, {"op": "ping"}, timeout=5_000.0), timeout=5.0
            )
            assert reply.payload["ok"]
            assert transport.reconnects >= 1
            assert len(connections) >= 2
            await transport.close()
            server.close()
            await server.wait_closed()

        asyncio.run(scenario())

    def test_incompatible_version_fails_cleanly(self):
        # A server that negotiates version 0 (no overlap) and closes:
        # calls must raise, not hang.
        async def scenario():
            async def ancient_server(reader, writer):
                await reader.read(64)
                writer.write(wire.hello_frame(version=0))
                await writer.drain()
                writer.close()

            server = await asyncio.start_server(ancient_server, "127.0.0.1", 0)
            port = server.sockets[0].getsockname()[1]
            transport = BinaryTcpTransport({0: ("127.0.0.1", port)})
            with pytest.raises((ReplicaUnavailable, RequestTimeout)):
                await asyncio.wait_for(
                    transport.call(0, {"op": "ping"}, timeout=2_000.0), timeout=5.0
                )
            await transport.close()
            server.close()
            await server.wait_closed()

        asyncio.run(scenario())

    def test_unreachable_replica_raises_promptly(self):
        async def scenario():
            transport = BinaryTcpTransport({0: ("127.0.0.1", 1)})
            with pytest.raises(ReplicaUnavailable):
                await transport.call(0, {"op": "ping"})
            await transport.close()

        asyncio.run(scenario())


class TestFaultsOverBinary:
    def test_drop_and_duplicate_apply_per_logical_op(self):
        # FaultyTransport wraps the binary channel exactly as it wraps
        # the JSON ones: drops surface as timeouts for the caller,
        # duplicates re-send the logical op (idempotent at the replica),
        # and the fault accounting sees every logical op despite the
        # frame coalescing underneath.
        async def scenario():
            replicas, servers, addresses = await serve(n=2)
            inner = BinaryTcpTransport(addresses)
            schedule = FaultSchedule(
                [
                    DropFault(frozenset({0}), Window(0), probability=1.0),
                    DuplicateFault(frozenset({1}), Window(0), probability=1.0),
                ]
            )
            faulty = FaultyTransport(inner, schedule, seed=3)
            with pytest.raises(RequestTimeout):
                await faulty.call(0, {"op": "ping"}, timeout=40.0)
            ack = await faulty.call(
                1, {"op": "write", "key": "k", "value": "v",
                    "counter": 1, "writer": 0}
            )
            assert ack.payload["ok"]
            assert faulty.injected["duplicate"] == 1
            assert faulty.injected["drop_request"] + faulty.injected[
                "drop_response"
            ] == 1
            # The duplicated write hit the socket twice; the dropped
            # ping reached it only if the *response* was what vanished.
            assert inner.calls == 2 + faulty.injected["drop_response"]
            # ...but applied once: the second copy lost the timestamp tie.
            seen = await inner.call(1, {"op": "read", "key": "k"})
            assert seen.payload["value"] == "v"
            assert seen.payload["counter"] == 1
            await faulty.close()
            for server in servers:
                server.close()
                await server.wait_closed()

        asyncio.run(scenario())
