"""Tests for repro.service.coordinator: quorum ops, repair, fallback."""

import asyncio

import pytest

from repro.core import Strategy
from repro.service import (
    Coordinator,
    InProcessTransport,
    OperationFailed,
    Replica,
    ServiceMetrics,
    make_replicas,
)
from repro.systems import HierarchicalTriangle, MajorityQuorumSystem


def build_service(system, *, strategy=None, seed=0, **coordinator_kwargs):
    replicas = make_replicas(system)
    transport = InProcessTransport(replicas, seed=seed)
    coordinator = Coordinator(
        system, transport, strategy, seed=seed, **coordinator_kwargs
    )
    return replicas, transport, coordinator


class TestBasicOps:
    def test_write_then_read(self):
        system = MajorityQuorumSystem.of_size(5)
        _, _, coordinator = build_service(system)

        async def scenario():
            ack = await coordinator.write("x", {"v": 1})
            assert (ack.counter, ack.writer) == (1, 0)
            result = await coordinator.read("x")
            assert result.value == {"v": 1}
            assert result.attempts == 1
            assert result.latency > 0

        asyncio.run(scenario())
        metrics = coordinator.metrics
        assert metrics.ops_attempted == 2
        assert metrics.success_rate == 1.0
        assert metrics.quorum_accesses == 2

    def test_read_of_unwritten_key_returns_none(self):
        system = MajorityQuorumSystem.of_size(3)
        _, _, coordinator = build_service(system)
        result = asyncio.run(coordinator.read("missing"))
        assert result.value is None
        assert result.counter == 0

    def test_writes_advance_the_logical_clock(self):
        system = MajorityQuorumSystem.of_size(3)
        _, _, coordinator = build_service(system)

        async def scenario():
            for index in range(3):
                ack = await coordinator.write("k", index)
                assert ack.counter == index + 1

        asyncio.run(scenario())


class TestReadRepair:
    def test_stale_member_of_read_quorum_gets_repaired(self):
        system = MajorityQuorumSystem.of_size(3)
        replicas = make_replicas(system)
        transport = InProcessTransport(replicas, seed=0)
        # Force the quorum {0, 1}; replica 0 is stale, replica 1 newest.
        replicas[0].apply_write("x", "old", 1, 0)
        replicas[1].apply_write("x", "new", 2, 0)
        strategy = Strategy.single(system, {0, 1})
        coordinator = Coordinator(system, transport, strategy, seed=0)

        result = asyncio.run(coordinator.read("x"))
        assert result.value == "new"
        assert replicas[0].get("x").value == "new"
        assert replicas[0].repairs_applied == 1
        assert coordinator.metrics.read_repairs == 1

    def test_unwritten_key_triggers_no_repair(self):
        system = MajorityQuorumSystem.of_size(3)
        _, _, coordinator = build_service(system)
        asyncio.run(coordinator.read("x"))
        assert coordinator.metrics.read_repairs == 0

    def test_repair_convergence_between_coordinators(self):
        system = MajorityQuorumSystem.of_size(5)
        replicas = make_replicas(system)
        transport = InProcessTransport(replicas, seed=3)
        shared = ServiceMetrics(system.n)
        first = Coordinator(
            system, transport, coordinator_id=0, seed=1, metrics=shared
        )
        second = Coordinator(
            system, transport, coordinator_id=1, seed=2, metrics=shared
        )

        async def scenario():
            await first.write("k", "from-first")
            await second.write("k", "from-second")
            # Any read sees the newest write (quorum intersection) and the
            # second coordinator's clock adopted the first's counter.
            result = await first.read("k")
            assert result.value == "from-second"
            assert result.writer == 1

        asyncio.run(scenario())


class TestFailureHandling:
    def test_crashing_a_quorums_worth_mid_run_falls_back(self):
        # Acceptance scenario: kill as many replicas as a quorum holds
        # (chosen so a live quorum still exists — a full quorum is a
        # transversal, so crashing one exactly would kill every quorum),
        # and the coordinator must keep serving via fallback quorums.
        system = HierarchicalTriangle.of_size(15)
        replicas, transport, coordinator = build_service(
            system, seed=0, suspicion_ttl=10
        )
        quorums = system.minimal_quorums()
        quorum_size = len(quorums[0])
        victims = None
        everyone = set(system.universe.ids)
        for candidate_extra in sorted(everyone - quorums[0]):
            candidate = set(sorted(quorums[0])[: quorum_size - 1]) | {candidate_extra}
            if system.contains_quorum(everyone - candidate):
                victims = candidate
                break
        assert victims is not None and len(victims) == quorum_size

        async def scenario():
            await coordinator.write("k", "before")
            for index in range(10):
                await coordinator.read("k")
            transport.crash(*victims)
            for index in range(30):
                result = await coordinator.read("k")
                assert result.value == "before"
            await coordinator.write("k", "after")
            assert (await coordinator.read("k")).value == "after"

        asyncio.run(scenario())
        metrics = coordinator.metrics
        assert metrics.success_rate == 1.0
        assert metrics.unavailable > 0  # crashed replicas were actually hit
        assert metrics.fallbacks > 0  # and fallback quorums finished the ops
        # Crashed elements stop appearing in served quorums once suspected.
        observed = metrics.observed_loads()
        live_max = max(observed[e] for e in everyone - victims)
        assert live_max > 0

    def test_all_replicas_down_exhausts_attempts(self):
        system = MajorityQuorumSystem.of_size(3)
        replicas, transport, coordinator = build_service(
            system, max_attempts=3, backoff_base=2.0, backoff_cap=4.0
        )
        transport.crash(0, 1, 2)

        with pytest.raises(OperationFailed) as info:
            asyncio.run(coordinator.read("x"))
        assert info.value.attempts == 3
        metrics = coordinator.metrics
        assert metrics.ops_failed == 1
        assert metrics.success_rate == 0.0
        # Latency accounts every burned deadline plus the two backoffs.
        assert info.value.latency >= 3 * coordinator.timeout + 2.0 + 4.0

    def test_timeouts_are_counted_and_fail_the_op(self):
        system = MajorityQuorumSystem.of_size(3)
        replicas = make_replicas(system)
        transport = InProcessTransport(
            replicas, seed=0, base_latency=10.0, mean_latency=0.0
        )
        coordinator = Coordinator(
            system, transport, timeout=5.0, max_attempts=2
        )
        with pytest.raises(OperationFailed):
            asyncio.run(coordinator.write("x", 1))
        assert coordinator.metrics.timeouts > 0
        assert coordinator.metrics.ops_failed == 1

    def test_suspected_replicas_are_probed_again_after_ttl(self):
        system = MajorityQuorumSystem.of_size(3)
        replicas, transport, coordinator = build_service(
            system, suspicion_ttl=2, max_attempts=4
        )

        async def scenario():
            await coordinator.write("x", 1)
            transport.crash(0)
            for _ in range(4):
                await coordinator.read("x")
            transport.recover(0)
            for _ in range(6):
                await coordinator.read("x")

        asyncio.run(scenario())
        # After recovery and TTL expiry, replica 0 serves again.
        assert replicas[0].reads_served > 0
        assert coordinator.metrics.success_rate == 1.0


class TestFallbackAccounting:
    def test_failed_op_counts_every_attempt_as_fallback(self):
        # Regression: the final failed attempt used to skip the fallback
        # counter, undercounting by one per failed operation.
        system = MajorityQuorumSystem.of_size(3)
        replicas, transport, coordinator = build_service(system, max_attempts=3)
        transport.crash(0, 1, 2)

        with pytest.raises(OperationFailed):
            asyncio.run(coordinator.read("x"))
        assert coordinator.metrics.fallbacks == 3


class TestSuspicionClearing:
    def test_total_outage_clears_suspicions_and_service_resumes(self):
        # Crash everything: a failed op suspects every replica, so every
        # quorum touches a suspect.  The coordinator must optimistically
        # forget the suspicions rather than refuse to serve, and the next
        # op after recovery succeeds on the first attempt.
        system = MajorityQuorumSystem.of_size(3)
        replicas, transport, coordinator = build_service(
            system, max_attempts=2, suspicion_ttl=100
        )

        async def scenario():
            await coordinator.write("x", 1)
            transport.crash(0, 1, 2)
            with pytest.raises(OperationFailed):
                await coordinator.read("x")
            assert coordinator._suspected  # failed members are suspected
            transport.recover(0, 1, 2)
            result = await coordinator.read("x")
            assert result.value == 1
            assert result.attempts == 1

        asyncio.run(scenario())
        # The reset happened inside _pick_quorum, then the successful
        # quorum cleared its members for good.
        assert coordinator._suspected == {}


class TestDegradedReads:
    def test_degraded_read_is_flagged_stale(self):
        system = MajorityQuorumSystem.of_size(3)
        replicas, transport, coordinator = build_service(
            system, max_attempts=2, degraded_reads=True
        )

        async def scenario():
            await coordinator.write("x", "v1")
            transport.crash(0, 1)  # no pair-quorum can complete
            result = await coordinator.read("x")
            assert result.stale
            assert result.value == "v1"
            assert result.attempts == coordinator.max_attempts + 1

        asyncio.run(scenario())
        assert coordinator.metrics.degraded_reads == 1
        assert coordinator.metrics.success_rate == 1.0

    def test_degraded_read_disabled_by_default(self):
        system = MajorityQuorumSystem.of_size(3)
        replicas, transport, coordinator = build_service(system, max_attempts=2)
        transport.crash(0, 1)
        with pytest.raises(OperationFailed):
            asyncio.run(coordinator.read("x"))

    def test_total_outage_still_fails_even_when_degraded(self):
        system = MajorityQuorumSystem.of_size(3)
        replicas, transport, coordinator = build_service(
            system, max_attempts=2, degraded_reads=True
        )
        transport.crash(0, 1, 2)
        with pytest.raises(OperationFailed):
            asyncio.run(coordinator.read("x"))
        assert coordinator.metrics.degraded_reads == 0
        assert coordinator.metrics.ops_failed == 1


class TestCircuitBreakers:
    def test_breaker_opens_and_excludes_the_replica(self):
        system = MajorityQuorumSystem.of_size(3)
        replicas, transport, coordinator = build_service(
            system,
            max_attempts=4,
            suspicion_ttl=1,  # suspicion alone cannot keep 0 excluded
            breaker_threshold=2,
            breaker_cooldown=30,
        )

        async def scenario():
            await coordinator.write("x", 1)
            transport.crash(0)
            for _ in range(6):
                await coordinator.read("x")
            assert coordinator.metrics.breaker_opens >= 1
            assert 0 in coordinator._open_breakers()
            # While the breaker is open, replica 0 stops burning deadlines.
            unavailable_before = coordinator.metrics.unavailable
            for _ in range(5):
                await coordinator.read("x")
            assert coordinator.metrics.unavailable == unavailable_before

        asyncio.run(scenario())

    def test_breaker_closes_after_cooldown_probe_succeeds(self):
        system = MajorityQuorumSystem.of_size(3)
        replicas, transport, coordinator = build_service(
            system,
            max_attempts=4,
            suspicion_ttl=1,
            breaker_threshold=2,
            breaker_cooldown=3,
        )

        async def scenario():
            await coordinator.write("x", 1)
            transport.crash(0)
            for _ in range(6):
                await coordinator.read("x")
            assert coordinator.metrics.breaker_opens >= 1
            transport.recover(0)
            served_before = replicas[0].reads_served
            for _ in range(20):
                await coordinator.read("x")
            # Half-open probe succeeded: the breaker closed and replica 0
            # serves quorum traffic again.
            assert replicas[0].reads_served > served_before
            assert 0 not in coordinator._open_breakers()

        asyncio.run(scenario())
        assert coordinator.metrics.success_rate == 1.0

    def test_breakers_disabled_by_default(self):
        system = MajorityQuorumSystem.of_size(3)
        _, transport, coordinator = build_service(system, max_attempts=4)
        transport.crash(0)

        async def scenario():
            for _ in range(10):
                await coordinator.write("x", 1)

        asyncio.run(scenario())
        assert coordinator.metrics.breaker_opens == 0
        assert coordinator._open_breakers() == frozenset()


class TestHintedHandoff:
    def test_missed_writes_are_replayed_after_recovery(self):
        system = MajorityQuorumSystem.of_size(3)
        replicas, transport, coordinator = build_service(
            system, max_attempts=4, suspicion_ttl=2
        )

        async def scenario():
            transport.crash(0)
            for index in range(8):
                await coordinator.write(f"k{index}", f"v{index}")
            assert coordinator.metrics.hints_recorded > 0
            assert replicas[0].get("k0") is None  # missed while down
            transport.recover(0)
            for _ in range(8):
                await coordinator.read("k0")

        asyncio.run(scenario())
        assert coordinator.metrics.hints_replayed > 0
        assert coordinator._hints == {}
        # Replica 0 converged through replayed repair requests (possibly
        # alongside read-repair for the keys that were read back).
        assert replicas[0].get("k0").value == "v0"

    def test_hint_keeps_only_the_newest_version_per_key(self):
        system = MajorityQuorumSystem.of_size(3)
        replicas, transport, coordinator = build_service(
            system, max_attempts=4, suspicion_ttl=2
        )

        async def scenario():
            transport.crash(0)
            for index in range(5):
                await coordinator.write("k", f"v{index}")
            transport.recover(0)
            for _ in range(8):
                await coordinator.write("other", 1)

        asyncio.run(scenario())
        # Replay delivered the newest queued version, not an older one.
        assert replicas[0].get("k").value == "v4"

    def test_handoff_can_be_disabled(self):
        system = MajorityQuorumSystem.of_size(3)
        replicas, transport, coordinator = build_service(
            system, max_attempts=4, hinted_handoff=False
        )
        transport.crash(0)

        async def scenario():
            for index in range(5):
                await coordinator.write(f"k{index}", index)

        asyncio.run(scenario())
        assert coordinator.metrics.hints_recorded == 0
        assert coordinator._hints == {}

    def test_hint_capacity_is_respected(self):
        system = MajorityQuorumSystem.of_size(3)
        replicas, transport, coordinator = build_service(
            system, max_attempts=4, hint_capacity=2
        )
        transport.crash(0)

        async def scenario():
            for index in range(10):
                await coordinator.write(f"k{index}", index)

        asyncio.run(scenario())
        queued = sum(len(per) for per in coordinator._hints.values())
        assert queued <= 2
        assert coordinator.metrics.hints_recorded <= 2


class TestPartialQuorumMode:
    def test_any_response_acks_when_full_quorum_not_required(self):
        # Testing-only mode behind the chaos harness's split-brain demo:
        # one live member is enough to acknowledge.
        system = MajorityQuorumSystem.of_size(3)
        replicas = make_replicas(system)
        transport = InProcessTransport(replicas, seed=0)
        strategy = Strategy.single(system, {0, 1})
        coordinator = Coordinator(
            system, transport, strategy, seed=0, require_full_quorum=False
        )
        transport.crash(1)

        async def scenario():
            ack = await coordinator.write("x", "v")
            assert ack.attempts == 1
            result = await coordinator.read("x")
            assert result.value == "v"

        asyncio.run(scenario())
        assert replicas[0].get("x").value == "v"
        assert replicas[1].get("x") is None  # the member that never saw it


class TestValidation:
    def test_foreign_strategy_rejected(self):
        system = MajorityQuorumSystem.of_size(3)
        other = MajorityQuorumSystem.of_size(5)
        replicas = make_replicas(system)
        transport = InProcessTransport(replicas)
        from repro.core.errors import ServiceError

        with pytest.raises(ServiceError):
            Coordinator(system, transport, Strategy.uniform(other))

    def test_bad_parameters_rejected(self):
        system = MajorityQuorumSystem.of_size(3)
        transport = InProcessTransport(make_replicas(system))
        from repro.core.errors import ServiceError

        with pytest.raises(ServiceError):
            Coordinator(system, transport, max_attempts=0)
        with pytest.raises(ServiceError):
            Coordinator(system, transport, timeout=0.0)
