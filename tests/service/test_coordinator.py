"""Tests for repro.service.coordinator: quorum ops, repair, fallback."""

import asyncio

import pytest

from repro.core import Strategy
from repro.service import (
    Coordinator,
    InProcessTransport,
    OperationFailed,
    Replica,
    ServiceMetrics,
    make_replicas,
)
from repro.systems import HierarchicalTriangle, MajorityQuorumSystem


def build_service(system, *, strategy=None, seed=0, **coordinator_kwargs):
    replicas = make_replicas(system)
    transport = InProcessTransport(replicas, seed=seed)
    coordinator = Coordinator(
        system, transport, strategy, seed=seed, **coordinator_kwargs
    )
    return replicas, transport, coordinator


class TestBasicOps:
    def test_write_then_read(self):
        system = MajorityQuorumSystem.of_size(5)
        _, _, coordinator = build_service(system)

        async def scenario():
            ack = await coordinator.write("x", {"v": 1})
            assert (ack.counter, ack.writer) == (1, 0)
            result = await coordinator.read("x")
            assert result.value == {"v": 1}
            assert result.attempts == 1
            assert result.latency > 0

        asyncio.run(scenario())
        metrics = coordinator.metrics
        assert metrics.ops_attempted == 2
        assert metrics.success_rate == 1.0
        assert metrics.quorum_accesses == 2

    def test_read_of_unwritten_key_returns_none(self):
        system = MajorityQuorumSystem.of_size(3)
        _, _, coordinator = build_service(system)
        result = asyncio.run(coordinator.read("missing"))
        assert result.value is None
        assert result.counter == 0

    def test_writes_advance_the_logical_clock(self):
        system = MajorityQuorumSystem.of_size(3)
        _, _, coordinator = build_service(system)

        async def scenario():
            for index in range(3):
                ack = await coordinator.write("k", index)
                assert ack.counter == index + 1

        asyncio.run(scenario())


class TestReadRepair:
    def test_stale_member_of_read_quorum_gets_repaired(self):
        system = MajorityQuorumSystem.of_size(3)
        replicas = make_replicas(system)
        transport = InProcessTransport(replicas, seed=0)
        # Force the quorum {0, 1}; replica 0 is stale, replica 1 newest.
        replicas[0].apply_write("x", "old", 1, 0)
        replicas[1].apply_write("x", "new", 2, 0)
        strategy = Strategy.single(system, {0, 1})
        coordinator = Coordinator(system, transport, strategy, seed=0)

        result = asyncio.run(coordinator.read("x"))
        assert result.value == "new"
        assert replicas[0].get("x").value == "new"
        assert replicas[0].repairs_applied == 1
        assert coordinator.metrics.read_repairs == 1

    def test_unwritten_key_triggers_no_repair(self):
        system = MajorityQuorumSystem.of_size(3)
        _, _, coordinator = build_service(system)
        asyncio.run(coordinator.read("x"))
        assert coordinator.metrics.read_repairs == 0

    def test_repair_convergence_between_coordinators(self):
        system = MajorityQuorumSystem.of_size(5)
        replicas = make_replicas(system)
        transport = InProcessTransport(replicas, seed=3)
        shared = ServiceMetrics(system.n)
        first = Coordinator(
            system, transport, coordinator_id=0, seed=1, metrics=shared
        )
        second = Coordinator(
            system, transport, coordinator_id=1, seed=2, metrics=shared
        )

        async def scenario():
            await first.write("k", "from-first")
            await second.write("k", "from-second")
            # Any read sees the newest write (quorum intersection) and the
            # second coordinator's clock adopted the first's counter.
            result = await first.read("k")
            assert result.value == "from-second"
            assert result.writer == 1

        asyncio.run(scenario())


class TestFailureHandling:
    def test_crashing_a_quorums_worth_mid_run_falls_back(self):
        # Acceptance scenario: kill as many replicas as a quorum holds
        # (chosen so a live quorum still exists — a full quorum is a
        # transversal, so crashing one exactly would kill every quorum),
        # and the coordinator must keep serving via fallback quorums.
        system = HierarchicalTriangle.of_size(15)
        replicas, transport, coordinator = build_service(
            system, seed=0, suspicion_ttl=10
        )
        quorums = system.minimal_quorums()
        quorum_size = len(quorums[0])
        victims = None
        everyone = set(system.universe.ids)
        for candidate_extra in sorted(everyone - quorums[0]):
            candidate = set(sorted(quorums[0])[: quorum_size - 1]) | {candidate_extra}
            if system.contains_quorum(everyone - candidate):
                victims = candidate
                break
        assert victims is not None and len(victims) == quorum_size

        async def scenario():
            await coordinator.write("k", "before")
            for index in range(10):
                await coordinator.read("k")
            transport.crash(*victims)
            for index in range(30):
                result = await coordinator.read("k")
                assert result.value == "before"
            await coordinator.write("k", "after")
            assert (await coordinator.read("k")).value == "after"

        asyncio.run(scenario())
        metrics = coordinator.metrics
        assert metrics.success_rate == 1.0
        assert metrics.unavailable > 0  # crashed replicas were actually hit
        assert metrics.fallbacks > 0  # and fallback quorums finished the ops
        # Crashed elements stop appearing in served quorums once suspected.
        observed = metrics.observed_loads()
        live_max = max(observed[e] for e in everyone - victims)
        assert live_max > 0

    def test_all_replicas_down_exhausts_attempts(self):
        system = MajorityQuorumSystem.of_size(3)
        replicas, transport, coordinator = build_service(
            system, max_attempts=3, backoff_base=2.0, backoff_cap=4.0
        )
        transport.crash(0, 1, 2)

        with pytest.raises(OperationFailed) as info:
            asyncio.run(coordinator.read("x"))
        assert info.value.attempts == 3
        metrics = coordinator.metrics
        assert metrics.ops_failed == 1
        assert metrics.success_rate == 0.0
        # Latency accounts every burned deadline plus the two backoffs.
        assert info.value.latency >= 3 * coordinator.timeout + 2.0 + 4.0

    def test_timeouts_are_counted_and_fail_the_op(self):
        system = MajorityQuorumSystem.of_size(3)
        replicas = make_replicas(system)
        transport = InProcessTransport(
            replicas, seed=0, base_latency=10.0, mean_latency=0.0
        )
        coordinator = Coordinator(
            system, transport, timeout=5.0, max_attempts=2
        )
        with pytest.raises(OperationFailed):
            asyncio.run(coordinator.write("x", 1))
        assert coordinator.metrics.timeouts > 0
        assert coordinator.metrics.ops_failed == 1

    def test_suspected_replicas_are_probed_again_after_ttl(self):
        system = MajorityQuorumSystem.of_size(3)
        replicas, transport, coordinator = build_service(
            system, suspicion_ttl=2, max_attempts=4
        )

        async def scenario():
            await coordinator.write("x", 1)
            transport.crash(0)
            for _ in range(4):
                await coordinator.read("x")
            transport.recover(0)
            for _ in range(6):
                await coordinator.read("x")

        asyncio.run(scenario())
        # After recovery and TTL expiry, replica 0 serves again.
        assert replicas[0].reads_served > 0
        assert coordinator.metrics.success_rate == 1.0


class TestValidation:
    def test_foreign_strategy_rejected(self):
        system = MajorityQuorumSystem.of_size(3)
        other = MajorityQuorumSystem.of_size(5)
        replicas = make_replicas(system)
        transport = InProcessTransport(replicas)
        from repro.core.errors import ServiceError

        with pytest.raises(ServiceError):
            Coordinator(system, transport, Strategy.uniform(other))

    def test_bad_parameters_rejected(self):
        system = MajorityQuorumSystem.of_size(3)
        transport = InProcessTransport(make_replicas(system))
        from repro.core.errors import ServiceError

        with pytest.raises(ServiceError):
            Coordinator(system, transport, max_attempts=0)
        with pytest.raises(ServiceError):
            Coordinator(system, transport, timeout=0.0)
