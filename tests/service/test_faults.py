"""Tests for repro.service.faults: schedules, windows, FaultyTransport."""

import asyncio

import numpy as np
import pytest

from repro.core.errors import ServiceError
from repro.service import (
    ActivationLog,
    ByzantineFault,
    CrashFault,
    DropFault,
    DuplicateFault,
    FaultSchedule,
    FaultyTransport,
    FlappingFault,
    InProcessTransport,
    LatencyFault,
    PartitionFault,
    Replica,
    ReplicaUnavailable,
    RequestTimeout,
    Window,
    split_brain_schedule,
)
from repro.service.replica import NULL_TIMESTAMP


def make_faulty(schedule, n=5, *, seed=0, site=0, transport_seed=0):
    replicas = [Replica(i) for i in range(n)]
    inner = InProcessTransport(replicas, seed=transport_seed)
    return replicas, FaultyTransport(inner, schedule, seed=seed, site=site)


class TestWindow:
    def test_half_open_semantics(self):
        window = Window(2.0, 5.0)
        assert not window.contains(1.9)
        assert window.contains(2.0)
        assert window.contains(4.999)
        assert not window.contains(5.0)

    def test_default_end_is_forever(self):
        window = Window(3.0)
        assert window.contains(1e12)
        assert not window.contains(2.9)

    def test_inverted_window_rejected(self):
        with pytest.raises(ServiceError):
            Window(5.0, 2.0)


class TestScheduleQueries:
    def test_crash_down_at_tracks_windows(self):
        schedule = FaultSchedule(
            [
                CrashFault(frozenset({0, 1}), Window(0, 10)),
                CrashFault(frozenset({2}), Window(5, 15)),
            ]
        )
        assert schedule.crash_down_at(0) == {0, 1}
        assert schedule.crash_down_at(7) == {0, 1, 2}
        assert schedule.crash_down_at(12) == {2}
        assert schedule.crash_down_at(20) == frozenset()

    def test_flapping_phase(self):
        flap = FlappingFault(
            frozenset({3}), Window(10, 26), period=8.0, down_fraction=0.5
        )
        schedule = FaultSchedule([flap])
        # Down for the first half of each 8-tick period inside the window.
        assert schedule.crash_down_at(10) == {3}
        assert schedule.crash_down_at(13.9) == {3}
        assert schedule.crash_down_at(14) == frozenset()
        assert schedule.crash_down_at(18) == {3}  # second cycle
        assert schedule.crash_down_at(26) == frozenset()  # window over

    def test_partition_is_per_site(self):
        schedule = FaultSchedule(
            [PartitionFault(frozenset({0, 1}), Window(0, 10), sites=frozenset({1}))]
        )
        assert schedule.unreachable_at(5, site=0) == frozenset()
        assert schedule.unreachable_at(5, site=1) == {0, 1}
        # Partitions are link faults: the node-failure set stays empty.
        assert schedule.crash_down_at(5) == frozenset()

    def test_latency_composition(self):
        schedule = FaultSchedule(
            [LatencyFault(frozenset({0}), Window(0, 10), extra=7.0, factor=3.0)]
        )
        assert schedule.latency_at(5, 0, 2.0) == pytest.approx(13.0)
        assert schedule.latency_at(5, 1, 2.0) == pytest.approx(2.0)
        assert schedule.latency_at(12, 0, 2.0) == pytest.approx(2.0)

    def test_drop_probability_takes_worst_per_direction(self):
        schedule = FaultSchedule(
            [
                DropFault(frozenset({0}), Window(0, 10), probability=0.2),
                DropFault(frozenset({0}), Window(0, 10), probability=0.6),
                DropFault(
                    frozenset({0}), Window(0, 10), probability=0.9,
                    direction="response",
                ),
            ]
        )
        assert schedule.drop_probability(5, 0, "request") == 0.6
        assert schedule.drop_probability(5, 0, "response") == 0.9
        assert schedule.drop_probability(5, 1, "request") == 0.0

    def test_non_fault_rules_rejected(self):
        with pytest.raises(ServiceError):
            FaultSchedule(["not a fault"])

    def test_extended_and_summary(self):
        schedule = FaultSchedule([CrashFault(frozenset({0}), Window(0, 5))])
        bigger = schedule.extended(
            [DuplicateFault(frozenset({1}), Window(0, 5), probability=1.0)]
        )
        assert len(schedule) == 1 and len(bigger) == 2
        assert bigger.to_dict() == {
            "rules": 2,
            "by_kind": {"crash": 1, "duplicate": 1},
        }

    def test_random_schedule_is_seed_deterministic(self):
        def build(seed):
            rng = np.random.default_rng(seed)
            return FaultSchedule.random(
                rng, range(10), 100.0, crash_rate=0.3, partitions=1
            )

        assert build(5).faults == build(5).faults
        assert build(5).faults != build(6).faults


class TestSplitBrain:
    def test_sides_are_complementary(self):
        faults = split_brain_schedule(range(5), Window(0, 10))
        schedule = FaultSchedule(faults)
        side_a = schedule.unreachable_at(5, site=0)
        side_b = schedule.unreachable_at(5, site=1)
        assert side_a | side_b == frozenset(range(5))
        assert side_a & side_b == frozenset()
        assert len(side_b) == (5 + 1) // 2  # site 1 loses the larger half


class TestFaultyTransport:
    def test_crash_fault_burns_deadline(self):
        schedule = FaultSchedule([CrashFault(frozenset({1}), Window(0, 10))])
        _, transport = make_faulty(schedule)

        async def scenario():
            with pytest.raises(ReplicaUnavailable) as info:
                await transport.call(1, {"op": "ping"}, timeout=40.0)
            assert info.value.latency == 40.0
            # Other replicas and later ticks are unaffected.
            assert (await transport.call(0, {"op": "ping"})).payload["ok"]
            transport.advance(10.0)
            assert (await transport.call(1, {"op": "ping"})).payload["ok"]

        asyncio.run(scenario())
        assert transport.injected["crash"] == 1

    def test_partition_respects_site(self):
        schedule = FaultSchedule(
            [PartitionFault(frozenset({0}), Window(0, 10), sites=frozenset({0}))]
        )
        replicas = [Replica(i) for i in range(3)]
        inner = InProcessTransport(replicas, seed=0)
        near = FaultyTransport(inner, schedule, seed=0, site=0)
        far = FaultyTransport(inner, schedule, seed=0, site=1)

        async def scenario():
            with pytest.raises(ReplicaUnavailable):
                await near.call(0, {"op": "ping"})
            assert (await far.call(0, {"op": "ping"})).payload["ok"]

        asyncio.run(scenario())
        assert near.injected["partition"] == 1
        assert far.injected["partition"] == 0

    def test_request_drop_has_no_side_effect(self):
        schedule = FaultSchedule(
            [DropFault(frozenset({0}), Window(0, 10), probability=1.0)]
        )
        replicas, transport = make_faulty(schedule)
        write = {"op": "write", "key": "k", "value": "v", "counter": 1, "writer": 0}

        async def scenario():
            with pytest.raises(RequestTimeout):
                await transport.call(0, write)

        asyncio.run(scenario())
        assert replicas[0].get("k") is None
        assert transport.injected["drop_request"] == 1

    def test_response_drop_applies_side_effect(self):
        schedule = FaultSchedule(
            [
                DropFault(
                    frozenset({0}), Window(0, 10), probability=1.0,
                    direction="response",
                )
            ]
        )
        replicas, transport = make_faulty(schedule)
        write = {"op": "write", "key": "k", "value": "v", "counter": 1, "writer": 0}

        async def scenario():
            with pytest.raises(RequestTimeout):
                await transport.call(0, write)

        asyncio.run(scenario())
        # The nasty case: the write applied even though the caller timed out.
        assert replicas[0].get("k").value == "v"
        assert transport.injected["drop_response"] == 1

    def test_duplicate_delivery_is_idempotent(self):
        schedule = FaultSchedule(
            [DuplicateFault(frozenset({0}), Window(0, 10), probability=1.0)]
        )
        replicas, transport = make_faulty(schedule)
        write = {"op": "write", "key": "k", "value": "v", "counter": 1, "writer": 0}

        async def scenario():
            reply = await transport.call(0, write)
            assert reply.payload["applied"]

        asyncio.run(scenario())
        assert transport.injected["duplicate"] == 1
        assert replicas[0].writes_applied == 1  # second delivery was a no-op
        assert replicas[0].get("k").value == "v"

    def test_latency_spike_can_time_out(self):
        schedule = FaultSchedule(
            [LatencyFault(frozenset({0}), Window(0, 10), extra=1000.0)]
        )
        _, transport = make_faulty(schedule)

        async def scenario():
            with pytest.raises(RequestTimeout):
                await transport.call(0, {"op": "ping"}, timeout=50.0)
            # A generous deadline admits the slow reply with shifted latency.
            reply = await transport.call(0, {"op": "ping"}, timeout=5000.0)
            assert reply.latency > 1000.0

        asyncio.run(scenario())
        assert transport.injected["latency_timeout"] == 1

    def test_coin_stream_is_schedule_independent(self):
        # Same seed, different schedules: the drop coins land on the same
        # calls, so editing rules never reshuffles unrelated randomness.
        def drops(schedule):
            _, transport = make_faulty(schedule, seed=42)

            async def scenario():
                outcomes = []
                for index in range(30):
                    try:
                        await transport.call(index % 5, {"op": "ping"})
                        outcomes.append(True)
                    except RequestTimeout:
                        outcomes.append(False)
                return outcomes

            return asyncio.run(scenario())

        half = FaultSchedule(
            [DropFault(frozenset(range(5)), Window(0, 100), probability=0.5)]
        )
        outcomes_a = drops(half)
        outcomes_b = drops(half)
        assert outcomes_a == outcomes_b
        assert not all(outcomes_a) and any(outcomes_a)
        # Restricting the rule to one replica keeps the surviving calls'
        # fates identical on the untouched replicas.
        narrow = FaultSchedule(
            [DropFault(frozenset({0}), Window(0, 100), probability=0.5)]
        )
        outcomes_c = drops(narrow)
        for index, (a, c) in enumerate(zip(outcomes_a, outcomes_c)):
            if index % 5 == 0:
                continue  # replica 0 calls may differ
            assert c  # no rule applies: the call must succeed

    def test_activation_log_is_ring_buffered(self):
        schedule = FaultSchedule([CrashFault(frozenset({0}), Window(0, 100))])
        replicas = [Replica(i) for i in range(2)]
        inner = InProcessTransport(replicas, seed=0)
        transport = FaultyTransport(inner, schedule, seed=0, log_cap=3)

        async def scenario():
            for _ in range(5):
                with pytest.raises(ReplicaUnavailable):
                    await transport.call(0, {"op": "ping"})

        asyncio.run(scenario())
        assert transport.injected["crash"] == 5
        assert len(transport.activation_log) == 3
        assert transport.activations_dropped == 2
        # List-like surface survives the bounding.
        assert transport.activation_log == [(0.0, "crash", 0)] * 3
        assert transport.activation_log[0] == (0.0, "crash", 0)
        assert transport.activation_log[-2:] == [(0.0, "crash", 0)] * 2
        assert "dropped=2" in repr(transport.activation_log)

    def test_activation_log_cap_must_be_positive(self):
        with pytest.raises(ValueError):
            ActivationLog(0)
        replicas = [Replica(0)]
        inner = InProcessTransport(replicas, seed=0)
        with pytest.raises(ValueError):
            FaultyTransport(inner, FaultSchedule(), log_cap=-1)

    def test_empty_schedule_is_transparent(self):
        replicas, transport = make_faulty(FaultSchedule())

        async def scenario():
            reply = await transport.call(2, {"op": "ping"})
            assert reply.payload["ok"]
            await transport.pause(1.0)
            await transport.close()

        asyncio.run(scenario())
        assert transport.injected == {
            "crash": 0,
            "partition": 0,
            "latency_timeout": 0,
            "drop_request": 0,
            "drop_response": 0,
            "duplicate": 0,
            "byz_wrong_value": 0,
            "byz_stale_timestamp": 0,
            "byz_equivocate": 0,
            "byz_write_fakeack": 0,
        }


class TestByzantineTransport:
    WRITE = {"op": "write", "key": "k", "value": "v", "counter": 3, "writer": 1}

    def liar_transport(self, mode, *, site=0, registry=None, n=3):
        schedule = FaultSchedule(
            [ByzantineFault(frozenset({0}), Window(0.0), mode=mode)]
        )
        replicas = [Replica(i) for i in range(n)]
        inner = InProcessTransport(replicas, seed=0)
        transport = FaultyTransport(
            inner, schedule, seed=0, site=site, fabricated_registry=registry
        )
        return replicas, inner, transport

    def test_wrong_value_read_lies_at_true_timestamp(self):
        replicas, _, transport = self.liar_transport("wrong_value")
        replicas[0].apply_write("k", "honest", 3, 1)

        async def scenario():
            return await transport.call(0, {"op": "read", "key": "k"})

        reply = asyncio.run(scenario())
        assert reply.payload["value"] == "zzz-byz:k:3:1"
        assert (reply.payload["counter"], reply.payload["writer"]) == (3, 1)
        assert transport.injected["byz_wrong_value"] == 1
        assert "zzz-byz:k:3:1" in transport.fabricated_values

    def test_wrong_value_fake_acks_writes_without_applying(self):
        replicas, _, transport = self.liar_transport("wrong_value")

        async def scenario():
            return await transport.call(0, dict(self.WRITE))

        reply = asyncio.run(scenario())
        # The ack looks exactly like an honest one...
        assert reply.payload["applied"] is True
        assert (reply.payload["counter"], reply.payload["writer"]) == (3, 1)
        # ...but the store was never touched (the wire saw a ping).
        assert replicas[0].get("k") is None
        assert replicas[0].writes_applied == 0
        assert transport.injected["byz_write_fakeack"] == 1

    def test_stale_timestamp_denies_the_write(self):
        replicas, _, transport = self.liar_transport("stale_timestamp")
        replicas[0].apply_write("k", "honest", 3, 1)

        async def scenario():
            return await transport.call(0, {"op": "read", "key": "k"})

        reply = asyncio.run(scenario())
        assert reply.payload["value"] is None
        assert (reply.payload["counter"], reply.payload["writer"]) == NULL_TIMESTAMP
        assert transport.injected["byz_stale_timestamp"] == 1
        # stale_timestamp liars apply writes honestly (the lie is denial).
        assert replicas[0].get("k").value == "honest"

    def test_equivocation_differs_per_site(self):
        registry = set()
        replicas_a, inner, near = self.liar_transport(
            "equivocate", site=0, registry=registry
        )
        # Same replicas and schedule, different caller site.
        far = FaultyTransport(
            inner, near.schedule, seed=1, site=1, fabricated_registry=registry
        )
        replicas_a[0].apply_write("k", "honest", 3, 1)

        async def scenario():
            reply_near = await near.call(0, {"op": "read", "key": "k"})
            reply_far = await far.call(0, {"op": "read", "key": "k"})
            return reply_near, reply_far

        reply_near, reply_far = asyncio.run(scenario())
        assert reply_near.payload["value"] != reply_far.payload["value"]
        assert reply_near.payload["value"].endswith(":s0")
        assert reply_far.payload["value"].endswith(":s1")
        # Both lies landed in the one shared registry.
        assert {reply_near.payload["value"], reply_far.payload["value"]} <= registry

    def test_honest_replicas_and_inactive_windows_untouched(self):
        schedule = FaultSchedule(
            [ByzantineFault(frozenset({0}), Window(10.0, 20.0))]
        )
        replicas = [Replica(i) for i in range(2)]
        inner = InProcessTransport(replicas, seed=0)
        transport = FaultyTransport(inner, schedule, seed=0)
        replicas[0].apply_write("k", "real", 1, 0)
        replicas[1].apply_write("k", "real", 1, 0)

        async def scenario():
            before = await transport.call(0, {"op": "read", "key": "k"})
            honest = await transport.call(1, {"op": "read", "key": "k"})
            transport.clock = 15.0
            lied = await transport.call(0, {"op": "read", "key": "k"})
            return before, honest, lied

        before, honest, lied = asyncio.run(scenario())
        assert before.payload["value"] == "real"
        assert honest.payload["value"] == "real"
        assert lied.payload["value"].startswith("zzz-byz:")

    def test_lie_content_burns_no_coins(self):
        # Byzantine rules draw no RNG: the drop/duplicate coin stream is
        # identical with and without the liar, so adding one to a seeded
        # scenario never reshuffles unrelated faults.
        drop = DropFault(frozenset({1}), Window(0, 100), probability=0.5)

        def outcomes(with_liar):
            rules = [drop]
            if with_liar:
                rules.append(ByzantineFault(frozenset({0}), Window(0.0)))
            replicas = [Replica(i) for i in range(3)]
            inner = InProcessTransport(replicas, seed=0)
            transport = FaultyTransport(inner, FaultSchedule(rules), seed=7)

            async def scenario():
                fates = []
                for _ in range(30):
                    try:
                        await transport.call(1, {"op": "ping"})
                        fates.append(True)
                    except RequestTimeout:
                        fates.append(False)
                return fates

            return asyncio.run(scenario())

        assert outcomes(False) == outcomes(True)
