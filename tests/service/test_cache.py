"""Tests for the coordinator-side TTL + stale-while-revalidate cache."""

import pytest

from repro.runtime.clock import VirtualClock
from repro.service import CacheEntry, CoordinatorCache


def _cache(**kwargs):
    clock = VirtualClock()
    return clock, CoordinatorCache(clock, **kwargs)


class TestConstruction:
    def test_rejects_bad_windows(self):
        clock = VirtualClock()
        with pytest.raises(ValueError):
            CoordinatorCache(clock, ttl_ms=0)
        with pytest.raises(ValueError):
            CoordinatorCache(clock, ttl_ms=-1)
        with pytest.raises(ValueError):
            CoordinatorCache(clock, ttl_ms=10, swr_ms=-1)


class TestLeaseLifecycle:
    def test_fresh_then_stale_then_miss(self):
        clock, cache = _cache(ttl_ms=100, swr_ms=50)
        cache.store("k", "v1", 1, 0)
        state, entry = cache.lookup("k")
        assert state == "fresh"
        assert entry == CacheEntry("v1", 1, 0, 0.0)
        # Lease expired, inside the grace window: served flagged stale.
        clock.advance(120)
        state, entry = cache.lookup("k")
        assert state == "stale"
        assert entry.value == "v1"
        # Past the grace window too: a full miss.
        clock.advance(40)
        state, entry = cache.lookup("k")
        assert state == "miss"
        assert entry is None

    def test_zero_swr_goes_straight_to_miss(self):
        clock, cache = _cache(ttl_ms=100)
        cache.store("k", "v1", 1, 0)
        clock.advance(100)
        assert cache.lookup("k")[0] == "miss"

    def test_unknown_key_is_a_miss(self):
        _, cache = _cache(ttl_ms=100)
        assert cache.lookup("nope") == ("miss", None)


class TestNewestWins:
    def test_older_version_cannot_roll_back(self):
        _, cache = _cache(ttl_ms=100)
        assert cache.store("k", "v3", 3, 1)
        assert not cache.store("k", "v2", 2, 9)
        assert cache.lookup("k")[1].value == "v3"

    def test_writer_breaks_counter_ties(self):
        _, cache = _cache(ttl_ms=100)
        cache.store("k", "a", 3, 2)
        assert not cache.store("k", "b", 3, 1)
        assert cache.store("k", "c", 3, 4)
        assert cache.lookup("k")[1].value == "c"

    def test_equal_version_revalidates_the_lease(self):
        clock, cache = _cache(ttl_ms=100, swr_ms=50)
        cache.store("k", "v1", 1, 0)
        clock.advance(120)
        assert cache.lookup("k")[0] == "stale"
        # A refresh confirming the same version restamps the lease.
        assert cache.store("k", "v1", 1, 0)
        assert cache.lookup("k")[0] == "fresh"


class TestSingleFlight:
    def test_refresh_slot_deduplicates_the_stampede(self):
        _, cache = _cache(ttl_ms=100, swr_ms=50)
        assert cache.begin_refresh("k")
        # Every concurrent stale hit after the first is deduplicated.
        assert not cache.begin_refresh("k")
        assert cache.begin_refresh("other")  # per-key, not global
        cache.end_refresh("k")
        assert cache.begin_refresh("k")
        assert cache.refreshes == 3

    def test_failed_refresh_is_counted_and_releases_the_slot(self):
        _, cache = _cache(ttl_ms=100)
        cache.begin_refresh("k")
        cache.end_refresh("k", ok=False)
        assert cache.refresh_failures == 1
        assert cache.begin_refresh("k")


class TestSnapshot:
    def test_counters_and_hit_rate(self):
        clock, cache = _cache(ttl_ms=100, swr_ms=50)
        cache.store("k", "v1", 1, 0)
        cache.lookup("k")          # fresh
        clock.advance(120)
        cache.lookup("k")          # stale (still served)
        clock.advance(40)
        cache.lookup("k")          # miss
        cache.lookup("absent")     # miss
        snap = cache.snapshot()
        assert snap["lookups"] == 4
        assert snap["hits"] == 1
        assert snap["stale_served"] == 1
        assert snap["misses"] == 2
        assert snap["hit_rate"] == pytest.approx(0.5)
        assert snap["stores"] == 1
        assert snap["size"] == 1

    def test_empty_snapshot(self):
        _, cache = _cache(ttl_ms=10)
        snap = cache.snapshot()
        assert snap["lookups"] == 0
        assert snap["hit_rate"] == 0.0
