"""Tests for repro.service.transport: determinism, crashes, TCP."""

import asyncio

import pytest

from repro.core.errors import ServiceError
from repro.service import (
    InProcessTransport,
    Replica,
    ReplicaUnavailable,
    RequestTimeout,
    TcpTransport,
    start_tcp_replicas,
)


def make_transport(n=5, **kwargs):
    return InProcessTransport([Replica(i) for i in range(n)], **kwargs)


class TestInProcess:
    def test_latency_sequence_is_seed_deterministic(self):
        async def latencies(seed):
            transport = make_transport(seed=seed)
            return [
                (await transport.call(i % 5, {"op": "ping"})).latency
                for i in range(20)
            ]

        first = asyncio.run(latencies(123))
        second = asyncio.run(latencies(123))
        other = asyncio.run(latencies(124))
        assert first == second
        assert first != other
        assert all(lat >= 1.0 for lat in first)  # base latency floor

    def test_crashed_replica_burns_the_deadline(self):
        async def scenario():
            transport = make_transport(seed=0)
            transport.crash(2)
            with pytest.raises(ReplicaUnavailable) as info:
                await transport.call(2, {"op": "ping"}, timeout=30.0)
            assert info.value.latency == 30.0
            transport.recover(2)
            reply = await transport.call(2, {"op": "ping"})
            assert reply.payload["ok"]

        asyncio.run(scenario())

    def test_slow_message_times_out_deterministically(self):
        async def scenario():
            transport = make_transport(seed=0, base_latency=10.0, mean_latency=0.0)
            with pytest.raises(RequestTimeout) as info:
                await transport.call(0, {"op": "ping"}, timeout=5.0)
            assert info.value.latency == 5.0
            # A generous deadline admits the same message.
            reply = await transport.call(0, {"op": "ping"}, timeout=100.0)
            assert reply.latency >= 10.0

        asyncio.run(scenario())

    def test_iid_crash_epochs_reproducible(self):
        first = make_transport(n=30, seed=9, crash_rate=0.3)
        second = make_transport(n=30, seed=9, crash_rate=0.3)
        epochs_a = [first.resample_crashes() for _ in range(10)]
        epochs_b = [second.resample_crashes() for _ in range(10)]
        assert epochs_a == epochs_b
        assert any(epochs_a)  # p=0.3 over 30 replicas: crashes do happen
        assert first.epochs == 10

    def test_zero_crash_rate_never_crashes(self):
        transport = make_transport(seed=4, crash_rate=0.0)
        assert transport.resample_crashes() == frozenset()

    def test_unknown_replica_and_bad_params_rejected(self):
        transport = make_transport()
        with pytest.raises(ServiceError):
            asyncio.run(transport.call(99, {"op": "ping"}))
        with pytest.raises(ServiceError):
            make_transport(crash_rate=1.5)
        with pytest.raises(ServiceError):
            InProcessTransport([])


class TestTcp:
    def test_round_trip_and_crash(self):
        async def scenario():
            replicas = [Replica(i) for i in range(3)]
            servers, addresses = await start_tcp_replicas(replicas, base_port=0)
            transport = TcpTransport(addresses)
            try:
                ack = await transport.call(
                    0,
                    {"op": "write", "key": "k", "value": "v", "counter": 1, "writer": 0},
                    timeout=2000.0,
                )
                assert ack.payload["ok"] and ack.payload["applied"]
                read = await transport.call(0, {"op": "read", "key": "k"}, timeout=2000.0)
                assert read.payload["value"] == "v"
                assert read.latency > 0.0
                # Replica servers answer garbage lines with an error dict,
                # and a killed server surfaces as ReplicaUnavailable.
                bad = await transport.call(1, {"op": "bogus"}, timeout=2000.0)
                assert bad.payload["ok"] is False
                servers[2].close()
                await servers[2].wait_closed()
                with pytest.raises(ReplicaUnavailable):
                    await transport.call(2, {"op": "ping"}, timeout=2000.0)
            finally:
                await transport.close()
                for server in servers[:2]:
                    server.close()
                    await server.wait_closed()

        asyncio.run(scenario())

    def test_base_port_layout(self):
        async def scenario():
            replicas = [Replica(i) for i in range(2)]
            servers, addresses = await start_tcp_replicas(replicas, base_port=0)
            try:
                assert set(addresses) == {0, 1}
                ports = {port for _, port in addresses.values()}
                assert len(ports) == 2  # distinct ephemeral ports
            finally:
                for server in servers:
                    server.close()
                    await server.wait_closed()

        asyncio.run(scenario())

    def test_empty_address_map_rejected(self):
        with pytest.raises(ServiceError):
            TcpTransport({})


class TestTcpReconnect:
    @staticmethod
    async def _start_one_shot_server(replica):
        """A replica server that closes every connection after one reply —
        the cached persistent connection is dead by the next call."""
        import json

        async def handle(reader, writer):
            line = await reader.readline()
            if line:
                response = replica.handle(json.loads(line))
                writer.write(json.dumps(response).encode() + b"\n")
                await writer.drain()
            writer.close()

        server = await asyncio.start_server(handle, host="127.0.0.1", port=0)
        return server, server.sockets[0].getsockname()[1]

    def test_dropped_persistent_connection_is_retried_once(self):
        async def scenario():
            replica = Replica(0)
            server, port = await self._start_one_shot_server(replica)
            transport = TcpTransport({0: ("127.0.0.1", port)})
            try:
                for index in range(3):
                    reply = await transport.call(
                        0,
                        {
                            "op": "write",
                            "key": f"k{index}",
                            "value": index,
                            "counter": index + 1,
                            "writer": 0,
                        },
                        timeout=2000.0,
                    )
                    assert reply.payload["ok"] and reply.payload["applied"]
            finally:
                await transport.close()
                server.close()
                await server.wait_closed()
            # Calls 2 and 3 found the cached connection closed by the peer
            # and transparently reconnected instead of failing.
            assert transport.reconnects == 2
            assert replica.writes_applied == 3

        asyncio.run(scenario())

    def test_fresh_connection_failure_is_not_retried(self):
        async def scenario():
            replica = Replica(0)
            server, port = await self._start_one_shot_server(replica)
            transport = TcpTransport({0: ("127.0.0.1", port)})
            try:
                await transport.call(0, {"op": "ping"}, timeout=2000.0)
                server.close()
                await server.wait_closed()
                # The cached connection is dead and the reconnect attempt
                # cannot reach the (gone) server: exactly one retry, then
                # the failure surfaces.
                with pytest.raises(ReplicaUnavailable):
                    await transport.call(0, {"op": "ping"}, timeout=2000.0)
            finally:
                await transport.close()
            assert transport.reconnects <= 1

        asyncio.run(scenario())
