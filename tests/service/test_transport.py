"""Tests for repro.service.transport: determinism, crashes, TCP."""

import asyncio

import pytest

from repro.core.errors import ServiceError
from repro.service import (
    InProcessTransport,
    Replica,
    ReplicaUnavailable,
    RequestTimeout,
    TcpTransport,
    start_tcp_replicas,
)


def make_transport(n=5, **kwargs):
    return InProcessTransport([Replica(i) for i in range(n)], **kwargs)


class TestInProcess:
    def test_latency_sequence_is_seed_deterministic(self):
        async def latencies(seed):
            transport = make_transport(seed=seed)
            return [
                (await transport.call(i % 5, {"op": "ping"})).latency
                for i in range(20)
            ]

        first = asyncio.run(latencies(123))
        second = asyncio.run(latencies(123))
        other = asyncio.run(latencies(124))
        assert first == second
        assert first != other
        assert all(lat >= 1.0 for lat in first)  # base latency floor

    def test_crashed_replica_burns_the_deadline(self):
        async def scenario():
            transport = make_transport(seed=0)
            transport.crash(2)
            with pytest.raises(ReplicaUnavailable) as info:
                await transport.call(2, {"op": "ping"}, timeout=30.0)
            assert info.value.latency == 30.0
            transport.recover(2)
            reply = await transport.call(2, {"op": "ping"})
            assert reply.payload["ok"]

        asyncio.run(scenario())

    def test_slow_message_times_out_deterministically(self):
        async def scenario():
            transport = make_transport(seed=0, base_latency=10.0, mean_latency=0.0)
            with pytest.raises(RequestTimeout) as info:
                await transport.call(0, {"op": "ping"}, timeout=5.0)
            assert info.value.latency == 5.0
            # A generous deadline admits the same message.
            reply = await transport.call(0, {"op": "ping"}, timeout=100.0)
            assert reply.latency >= 10.0

        asyncio.run(scenario())

    def test_iid_crash_epochs_reproducible(self):
        first = make_transport(n=30, seed=9, crash_rate=0.3)
        second = make_transport(n=30, seed=9, crash_rate=0.3)
        epochs_a = [first.resample_crashes() for _ in range(10)]
        epochs_b = [second.resample_crashes() for _ in range(10)]
        assert epochs_a == epochs_b
        assert any(epochs_a)  # p=0.3 over 30 replicas: crashes do happen
        assert first.epochs == 10

    def test_zero_crash_rate_never_crashes(self):
        transport = make_transport(seed=4, crash_rate=0.0)
        assert transport.resample_crashes() == frozenset()

    def test_unknown_replica_and_bad_params_rejected(self):
        transport = make_transport()
        with pytest.raises(ServiceError):
            asyncio.run(transport.call(99, {"op": "ping"}))
        with pytest.raises(ServiceError):
            make_transport(crash_rate=1.5)
        with pytest.raises(ServiceError):
            InProcessTransport([])


class TestTcp:
    def test_round_trip_and_crash(self):
        async def scenario():
            replicas = [Replica(i) for i in range(3)]
            servers, addresses = await start_tcp_replicas(replicas, base_port=0)
            transport = TcpTransport(addresses)
            try:
                ack = await transport.call(
                    0,
                    {"op": "write", "key": "k", "value": "v", "counter": 1, "writer": 0},
                    timeout=2000.0,
                )
                assert ack.payload["ok"] and ack.payload["applied"]
                read = await transport.call(0, {"op": "read", "key": "k"}, timeout=2000.0)
                assert read.payload["value"] == "v"
                assert read.latency > 0.0
                # Replica servers answer garbage lines with an error dict,
                # and a killed server surfaces as ReplicaUnavailable.
                bad = await transport.call(1, {"op": "bogus"}, timeout=2000.0)
                assert bad.payload["ok"] is False
                servers[2].close()
                await servers[2].wait_closed()
                with pytest.raises(ReplicaUnavailable):
                    await transport.call(2, {"op": "ping"}, timeout=2000.0)
            finally:
                await transport.close()
                for server in servers[:2]:
                    server.close()
                    await server.wait_closed()

        asyncio.run(scenario())

    def test_base_port_layout(self):
        async def scenario():
            replicas = [Replica(i) for i in range(2)]
            servers, addresses = await start_tcp_replicas(replicas, base_port=0)
            try:
                assert set(addresses) == {0, 1}
                ports = {port for _, port in addresses.values()}
                assert len(ports) == 2  # distinct ephemeral ports
            finally:
                for server in servers:
                    server.close()
                    await server.wait_closed()

        asyncio.run(scenario())

    def test_empty_address_map_rejected(self):
        with pytest.raises(ServiceError):
            TcpTransport({})


class TestTcpReconnect:
    @staticmethod
    async def _start_one_shot_server(replica):
        """A replica server that closes every connection after one reply —
        the cached persistent connection is dead by the next call."""
        import json

        async def handle(reader, writer):
            line = await reader.readline()
            if line:
                request = json.loads(line)
                rpc_id = request.pop("id", None)
                response = replica.handle(request)
                if rpc_id is not None:
                    response = {**response, "id": rpc_id}
                writer.write(json.dumps(response).encode() + b"\n")
                await writer.drain()
            writer.close()

        server = await asyncio.start_server(handle, host="127.0.0.1", port=0)
        return server, server.sockets[0].getsockname()[1]

    def test_dropped_persistent_connection_is_retried_once(self):
        async def scenario():
            replica = Replica(0)
            server, port = await self._start_one_shot_server(replica)
            transport = TcpTransport({0: ("127.0.0.1", port)})
            try:
                for index in range(3):
                    reply = await transport.call(
                        0,
                        {
                            "op": "write",
                            "key": f"k{index}",
                            "value": index,
                            "counter": index + 1,
                            "writer": 0,
                        },
                        timeout=2000.0,
                    )
                    assert reply.payload["ok"] and reply.payload["applied"]
            finally:
                await transport.close()
                server.close()
                await server.wait_closed()
            # Calls 2 and 3 found the cached connection closed by the peer
            # and transparently reconnected instead of failing.
            assert transport.reconnects == 2
            assert replica.writes_applied == 3

        asyncio.run(scenario())

    def test_fresh_connection_failure_is_not_retried(self):
        async def scenario():
            replica = Replica(0)
            server, port = await self._start_one_shot_server(replica)
            transport = TcpTransport({0: ("127.0.0.1", port)})
            try:
                await transport.call(0, {"op": "ping"}, timeout=2000.0)
                server.close()
                await server.wait_closed()
                # The cached connection is dead and the reconnect attempt
                # cannot reach the (gone) server: exactly one retry, then
                # the failure surfaces.
                with pytest.raises(ReplicaUnavailable):
                    await transport.call(0, {"op": "ping"}, timeout=2000.0)
            finally:
                await transport.close()
            assert transport.reconnects <= 1

        asyncio.run(scenario())


class TestPipelining:
    """The correlation-id multiplexing added by the hot-path overhaul."""

    @staticmethod
    async def _start_reordering_server(replica, batch):
        """A replica server that withholds replies until ``batch`` requests
        arrived, then answers them in *reverse* order — only correlation
        ids, never arrival order, can match replies to callers."""
        import json

        async def handle(reader, writer):
            pending = []
            while True:
                line = await reader.readline()
                if not line:
                    break
                pending.append(json.loads(line))
                if len(pending) < batch:
                    continue
                out = []
                for request in reversed(pending):
                    rpc_id = request.pop("id", None)
                    response = replica.handle(request)
                    if rpc_id is not None:
                        response = {**response, "id": rpc_id}
                    out.append(json.dumps(response).encode())
                writer.write(b"\n".join(out) + b"\n")
                await writer.drain()
                pending = []
            writer.close()

        server = await asyncio.start_server(handle, host="127.0.0.1", port=0)
        return server, server.sockets[0].getsockname()[1]

    def test_out_of_order_replies_reach_the_right_callers(self):
        async def scenario():
            replica = Replica(0)
            for index in range(3):
                replica.handle(
                    {
                        "op": "write",
                        "key": f"k{index}",
                        "value": f"v{index}",
                        "counter": index + 1,
                        "writer": 0,
                    }
                )
            server, port = await self._start_reordering_server(replica, batch=3)
            transport = TcpTransport({0: ("127.0.0.1", port)})
            try:
                replies = await asyncio.gather(
                    *(
                        transport.call(
                            0, {"op": "read", "key": f"k{i}"}, timeout=2000.0
                        )
                        for i in range(3)
                    )
                )
            finally:
                await transport.close()
                server.close()
                await server.wait_closed()
            # Despite the server reversing the reply order, every caller
            # got the value for *its* key over the one shared connection.
            assert [r.payload["value"] for r in replies] == ["v0", "v1", "v2"]
            assert transport.reconnects == 0

        asyncio.run(scenario())

    def test_concurrent_calls_share_one_pipelined_connection(self):
        async def scenario():
            replicas = [Replica(0)]
            servers, addresses = await start_tcp_replicas(replicas, base_port=0)
            transport = TcpTransport(addresses)
            try:
                replies = await asyncio.gather(
                    *(
                        transport.call(0, {"op": "ping"}, timeout=2000.0)
                        for _ in range(16)
                    )
                )
                assert all(r.payload["ok"] for r in replies)
                # One dial served all 16 in-flight calls; batching means
                # strictly fewer socket flushes than requests.
                assert transport.reconnects == 0
                assert transport.calls == 16
                assert 1 <= transport.flushes < 16
            finally:
                await transport.close()
                for server in servers:
                    server.close()
                    await server.wait_closed()

        asyncio.run(scenario())

    def test_channel_death_fails_only_affected_futures(self):
        async def scenario():
            # Replica 0: a black hole that reads requests and then slams
            # the connection shut without answering.  Replica 1: healthy.
            async def black_hole(reader, writer):
                await reader.readline()
                writer.close()

            broken = await asyncio.start_server(
                black_hole, host="127.0.0.1", port=0
            )
            servers, addresses = await start_tcp_replicas(
                [Replica(1)], base_port=0
            )
            addresses[0] = ("127.0.0.1", broken.sockets[0].getsockname()[1])
            transport = TcpTransport(addresses)
            try:
                outcomes = await asyncio.gather(
                    transport.call(0, {"op": "ping"}, timeout=2000.0),
                    transport.call(1, {"op": "ping"}, timeout=2000.0),
                    return_exceptions=True,
                )
            finally:
                await transport.close()
                broken.close()
                await broken.wait_closed()
                for server in servers:
                    server.close()
                    await server.wait_closed()
            # The dead channel failed its own pending call; the call
            # multiplexed to the healthy replica was untouched.
            assert isinstance(outcomes[0], ReplicaUnavailable)
            assert outcomes[1].payload["ok"]

        asyncio.run(scenario())

    def test_timeout_keeps_the_channel_alive(self):
        async def scenario():
            import json

            async def slow_then_fast(reader, writer):
                first = True
                while True:
                    line = await reader.readline()
                    if not line:
                        break
                    request = json.loads(line)
                    rpc_id = request.pop("id", None)
                    if first:
                        first = False
                        await asyncio.sleep(0.2)  # past the first deadline
                    response = {"ok": True, "id": rpc_id}
                    writer.write(json.dumps(response).encode() + b"\n")
                    await writer.drain()
                writer.close()

            server = await asyncio.start_server(
                slow_then_fast, host="127.0.0.1", port=0
            )
            port = server.sockets[0].getsockname()[1]
            transport = TcpTransport({0: ("127.0.0.1", port)})
            try:
                with pytest.raises(RequestTimeout):
                    await transport.call(0, {"op": "ping"}, timeout=50.0)
                # The expired request did not tear the connection down: the
                # next call reuses it, and the late reply for the dead id
                # is dropped instead of corrupting this one.
                reply = await transport.call(0, {"op": "ping"}, timeout=2000.0)
                assert reply.payload["ok"]
                assert transport.reconnects == 0
            finally:
                await transport.close()
                server.close()
                await server.wait_closed()

        asyncio.run(scenario())


class TestFaultyOverPipelined:
    """FaultSchedule rules apply per *logical* call over pipelined TCP."""

    def test_drop_and_duplicate_rules_apply_per_call(self):
        from repro.service.faults import (
            DropFault,
            DuplicateFault,
            FaultSchedule,
            FaultyTransport,
            Window,
        )

        async def scenario():
            replicas = [Replica(0)]
            servers, addresses = await start_tcp_replicas(replicas, base_port=0)
            inner = TcpTransport(addresses)
            schedule = FaultSchedule(
                [
                    DropFault(
                        frozenset({0}), Window(0, 1), probability=1.0,
                        direction="request",
                    ),
                    DuplicateFault(
                        frozenset({0}), Window(1, 2), probability=1.0
                    ),
                ]
            )
            faulty = FaultyTransport(inner, schedule, seed=3)
            try:
                # Tick 0: the drop rule eats the request before the wire —
                # the replica never sees it, the caller burns the deadline.
                with pytest.raises(RequestTimeout):
                    await faulty.call(0, {"op": "ping"}, timeout=500.0)
                assert inner.calls == 0
                # Tick 1: the duplicate rule sends the write twice over the
                # pipelined channel; the timestamped apply is idempotent.
                faulty.advance()
                write = {
                    "op": "write",
                    "key": "k",
                    "value": "v",
                    "counter": 1,
                    "writer": 0,
                }
                reply = await faulty.call(0, write, timeout=2000.0)
                assert reply.payload["ok"] and reply.payload["applied"]
                assert inner.calls == 2  # one logical call, two deliveries
                assert replicas[0].writes_applied == 1
                assert replicas[0].writes_ignored == 1
                assert faulty.injected["drop_request"] == 1
                assert faulty.injected["duplicate"] == 1
            finally:
                await faulty.close()
                for server in servers:
                    server.close()
                    await server.wait_closed()

        asyncio.run(scenario())
