"""Tests for repro.service.replica: versioning and the dict protocol."""

import pytest

from repro.service import NULL_TIMESTAMP, Replica, Versioned


@pytest.fixture
def replica():
    return Replica(3, name=(1, 1))


class TestVersioning:
    def test_fresh_key_reads_null_timestamp(self, replica):
        response = replica.handle({"op": "read", "key": "x"})
        assert response["ok"]
        assert response["value"] is None
        assert (response["counter"], response["writer"]) == NULL_TIMESTAMP

    def test_write_then_read_round_trip(self, replica):
        ack = replica.handle(
            {"op": "write", "key": "x", "value": [1, 2], "counter": 1, "writer": 0}
        )
        assert ack["ok"] and ack["applied"]
        response = replica.handle({"op": "read", "key": "x"})
        assert response["value"] == [1, 2]
        assert (response["counter"], response["writer"]) == (1, 0)

    def test_stale_write_is_ignored(self, replica):
        replica.apply_write("x", "new", 5, 1)
        assert not replica.apply_write("x", "old", 4, 9)
        assert not replica.apply_write("x", "same-ts", 5, 1)
        assert replica.get("x").value == "new"
        assert replica.writes_ignored == 2

    def test_writer_id_breaks_counter_ties(self, replica):
        replica.apply_write("x", "low", 5, 1)
        assert replica.apply_write("x", "high", 5, 2)
        assert replica.get("x") == Versioned("high", 5, 2)

    def test_writes_are_idempotent_and_reorderable(self, replica):
        writes = [("a", 3, 0), ("b", 1, 0), ("c", 2, 1), ("a", 3, 0)]
        for value, counter, writer in writes:
            replica.apply_write("k", value, counter, writer)
        # Newest timestamp wins no matter the arrival order.
        assert replica.get("k") == Versioned("a", 3, 0)


class TestProtocol:
    def test_repair_tracked_separately(self, replica):
        ack = replica.handle(
            {"op": "repair", "key": "x", "value": 1, "counter": 2, "writer": 0}
        )
        assert ack["ok"] and ack["applied"]
        assert replica.repairs_applied == 1
        # A stale repair applies nothing and counts nothing.
        stale = replica.handle(
            {"op": "repair", "key": "x", "value": 0, "counter": 1, "writer": 0}
        )
        assert stale["ok"] and not stale["applied"]
        assert replica.repairs_applied == 1

    def test_ping(self, replica):
        assert replica.handle({"op": "ping"}) == {"ok": True, "replica": 3}

    @pytest.mark.parametrize(
        "request_dict",
        [
            {"op": "nope", "key": "x"},
            {"op": "read"},
            {"op": "read", "key": ""},
            {"op": "read", "key": 42},
            {"op": "write", "key": "x", "counter": "NaN", "writer": 0},
            {"op": "write", "key": "x"},
        ],
    )
    def test_bad_requests_answer_instead_of_raising(self, replica, request_dict):
        response = replica.handle(request_dict)
        assert response["ok"] is False
        assert "error" in response
