"""Determinism tests for the virtual-time transport and chaos modes.

The runtime unification's core promises, asserted end to end:

* the same seed through ``run_chaos(mode="sim")`` twice produces
  byte-identical operation traces and metric snapshots (compared by
  their sha256 hashes);
* the same seed through ``mode="sim"`` (virtual clock) and ``mode="wall"``
  (real clock, really sleeping every latency) produces the *same*
  outcomes — virtual time changes how fast the run finishes, not what
  happens in it;
* one ``FaultSchedule`` drives ``FaultyTransport`` identically whichever
  inner transport it wraps — the fault-activation log is a pure function
  of (schedule, seed, call sequence).
"""

import asyncio

import pytest

from repro.core.errors import ReplicaUnavailable, RequestTimeout
from repro.runtime import RngStreams, VirtualClock, run_virtual
from repro.service import (
    ChaosConfig,
    CrashFault,
    FaultSchedule,
    FaultyTransport,
    InProcessTransport,
    PartitionFault,
    Reply,
    SimTransport,
    Window,
    make_replicas,
    run_chaos,
)
from repro.systems import HierarchicalTriangle, MajorityQuorumSystem

def small_config() -> ChaosConfig:
    return ChaosConfig(ops=60, keys=4, clients=2, timeout=30.0)


class TestSimTransport:
    def test_latency_is_spent_in_clock_time(self):
        system = MajorityQuorumSystem.of_size(3)
        clock = VirtualClock()
        transport = SimTransport(make_replicas(system), clock=clock, seed=1)

        async def main():
            reply = await transport.call(0, {"op": "read", "key": "k"})
            return reply

        reply = run_virtual(main(), clock=clock)
        assert isinstance(reply, Reply)
        assert clock.now() == pytest.approx(reply.latency)

    def test_crashed_replica_burns_full_deadline(self):
        system = MajorityQuorumSystem.of_size(3)
        clock = VirtualClock()
        transport = SimTransport(make_replicas(system), clock=clock, seed=1)
        transport.crash(0)

        async def main():
            with pytest.raises(ReplicaUnavailable):
                await transport.call(0, {"op": "read", "key": "k"}, timeout=25.0)
            return clock.now()

        assert run_virtual(main(), clock=clock) == pytest.approx(25.0)
        assert transport.unavailable == 1

    def test_slow_reply_times_out_at_deadline(self):
        system = MajorityQuorumSystem.of_size(3)
        clock = VirtualClock()
        # base latency alone exceeds the deadline: guaranteed timeout.
        transport = SimTransport(
            make_replicas(system), clock=clock, seed=0, base_latency=100.0
        )

        async def main():
            with pytest.raises(RequestTimeout):
                await transport.call(0, {"op": "read", "key": "k"}, timeout=10.0)
            return clock.now()

        assert run_virtual(main(), clock=clock) == pytest.approx(10.0)
        assert transport.timeouts == 1

    def test_concurrent_calls_complete_in_latency_order(self):
        system = MajorityQuorumSystem.of_size(5)
        clock = VirtualClock()
        transport = SimTransport(make_replicas(system), clock=clock, seed=3)
        completions = []

        async def one(rid):
            reply = await transport.call(rid, {"op": "read", "key": "k"})
            completions.append((clock.now(), rid, reply.latency))

        async def main():
            await asyncio.gather(*(one(rid) for rid in range(5)))

        run_virtual(main(), clock=clock)
        finish_times = [entry[0] for entry in completions]
        assert finish_times == sorted(finish_times)
        for finished, _, latency in completions:
            assert finished == pytest.approx(latency)


class TestChaosSimDeterminism:
    def test_same_seed_same_hashes(self):
        system = HierarchicalTriangle(7)
        first = run_chaos(system, seed=5, config=small_config(), mode="sim")
        second = run_chaos(system, seed=5, config=small_config(), mode="sim")
        assert first.hashes == second.hashes
        assert first.trace == second.trace
        assert first.ok and second.ok

    def test_different_seed_different_hashes(self):
        system = HierarchicalTriangle(7)
        first = run_chaos(system, seed=5, config=small_config(), mode="sim")
        other = run_chaos(system, seed=6, config=small_config(), mode="sim")
        assert first.hashes["trace"] != other.hashes["trace"]

    def test_sim_matches_wall_clock_run(self):
        # The expensive but decisive one: the identical run over a real
        # clock — every latency actually slept — lands on the same
        # hashes.  Virtual time accelerates, it does not alter.
        system = MajorityQuorumSystem.of_size(5)
        config = ChaosConfig(ops=30, keys=3, clients=2, timeout=30.0)
        sim = run_chaos(system, seed=3, config=config, mode="sim")
        wall = run_chaos(system, seed=3, config=config, mode="wall")
        assert sim.hashes == wall.hashes
        assert sim.operations == wall.operations
        # And the speedup is real: the sim run skips the sleeps.
        assert sim.elapsed_seconds < wall.elapsed_seconds

    def test_mode_recorded_in_report(self):
        system = MajorityQuorumSystem.of_size(3)
        report = run_chaos(system, seed=0, config=small_config(), mode="sim")
        assert report.mode == "sim"
        assert report.to_dict()["mode"] == "sim"
        assert set(report.to_dict()["hashes"]) == {"trace", "metrics"}

    def test_split_brain_detected_under_sim(self):
        system = MajorityQuorumSystem.of_size(5)
        config = small_config()
        config.unsafe_partial_writes = True
        report = run_chaos(system, seed=0, config=config, mode="sim")
        assert not report.ok


class TestActivationLogParity:
    def test_same_log_over_any_inner_transport(self):
        # Crash/partition decisions are schedule lookups plus wrapper-RNG
        # coins — nothing about the inner transport enters them, so the
        # activation log must be identical over InProcessTransport and
        # SimTransport for the same wrapper seed and call sequence.
        system = MajorityQuorumSystem.of_size(5)
        schedule = FaultSchedule(
            [
                CrashFault(frozenset({0, 3}), Window(0.0, 10.0)),
                CrashFault(frozenset({1}), Window(5.0, 15.0)),
                PartitionFault(frozenset({2}), Window(10.0, 20.0)),
            ]
        )

        def run_over(make_inner, runner):
            inner = make_inner()
            wrapper = FaultyTransport(inner, schedule, seed=11)

            async def main():
                for tick in range(20):
                    wrapper.clock = float(tick)
                    for rid in range(5):
                        try:
                            await wrapper.call(
                                rid, {"op": "read", "key": "k"}, timeout=20.0
                            )
                        except (ReplicaUnavailable, RequestTimeout):
                            pass
                return wrapper.activation_log

            return runner(main())

        in_process = run_over(
            lambda: InProcessTransport(
                make_replicas(MajorityQuorumSystem.of_size(5)), seed=0
            ),
            asyncio.run,
        )
        clock = VirtualClock()
        sim = run_over(
            lambda: SimTransport(
                make_replicas(MajorityQuorumSystem.of_size(5)), clock=clock, seed=0
            ),
            lambda coro: run_virtual(coro, clock=clock),
        )
        assert in_process == sim
        assert in_process  # the schedule actually injected something

    def test_log_entries_shape(self):
        schedule = FaultSchedule([CrashFault(frozenset({0}), Window(0.0, 5.0))])
        inner = InProcessTransport(
            make_replicas(MajorityQuorumSystem.of_size(3)), seed=0
        )
        wrapper = FaultyTransport(inner, schedule, seed=0)

        async def main():
            with pytest.raises(ReplicaUnavailable):
                await wrapper.call(0, {"op": "read", "key": "k"})

        asyncio.run(main())
        assert wrapper.activation_log == [(0.0, "crash", 0)]
        assert wrapper.injected["crash"] == 1
