"""Tests for hedged quorum fan-out and the amortized serving hot path.

The deterministic scenarios use a tiny explicit system whose strategy
puts all its weight on one quorum, so the sampled primary — and with it
the hedge plan — is fixed:

* universe ``{0, 1, 2}``, quorums ``{0, 1}`` and ``{0, 2}``;
* strategy weight 1.0 on ``{0, 1}`` → the primary is always ``{0, 1}``,
  the single spare is replica 2, and the only alternate candidate is
  ``{0, 2}``.
"""

import asyncio

import numpy as np
import pytest

from repro.core import ExplicitQuorumSystem, Strategy, Universe
from repro.service import (
    Coordinator,
    InProcessTransport,
    Replica,
    ServiceMetrics,
    make_replicas,
)
from repro.service.chaos import ChaosConfig, run_chaos
from repro.service.faults import (
    FaultSchedule,
    FaultyTransport,
    LatencyFault,
    Window,
)
from repro.service.transport import (
    DEFAULT_TIMEOUT_MS,
    Reply,
    TcpTransport,
    Transport,
)
from repro.systems import MajorityQuorumSystem


def pinned_system():
    """System + strategy whose primary quorum is always ``{0, 1}``."""
    system = ExplicitQuorumSystem(
        Universe.of_size(3), [{0, 1}, {0, 2}], name="pinned"
    )
    strategy = Strategy(system, list(system.minimal_quorums()), [1.0, 0.0])
    return system, strategy


def build(transport_factory, **coordinator_kwargs):
    system, strategy = pinned_system()
    replicas = [Replica(i) for i in range(3)]
    transport = transport_factory(replicas)
    coordinator = Coordinator(
        system, transport, strategy, seed=0, **coordinator_kwargs
    )
    return replicas, transport, coordinator


class StallTransport(Transport):
    """In-process transport where one replica stalls real wall-clock time —
    the minimal way to exercise the ``hedge_delay_ms`` timer path."""

    def __init__(self, replicas, slow_id, delay_s):
        self.replicas = {r.replica_id: r for r in replicas}
        self.slow_id = slow_id
        self.delay_s = delay_s

    async def call(self, replica_id, request, timeout=DEFAULT_TIMEOUT_MS):
        await asyncio.sleep(self.delay_s if replica_id == self.slow_id else 0)
        return Reply(self.replicas[replica_id].handle(request), 1.0)


class TestUpfrontHedging:
    def test_hedge_wins_past_a_crashed_primary_member(self):
        replicas, transport, coordinator = build(
            lambda r: InProcessTransport(r, seed=0), hedge_spares=1
        )
        transport.crash(1)

        async def scenario():
            ack = await coordinator.write("k", "v")
            assert ack.attempts == 1  # no fallback attempt needed
            await coordinator.drain()

        asyncio.run(scenario())
        metrics = coordinator.metrics
        assert metrics.hedges_issued == 1
        assert metrics.hedges_won == 1
        assert metrics.fallbacks == 0
        # The alternate candidate {0, 2} carried the write.
        assert replicas[0].writes_applied == 1
        assert replicas[2].writes_applied == 1

    def test_without_hedging_the_same_crash_costs_a_fallback(self):
        replicas, transport, coordinator = build(
            lambda r: InProcessTransport(r, seed=0)
        )
        transport.crash(1)

        async def scenario():
            ack = await coordinator.write("k", "v")
            assert ack.attempts == 2  # attempt 1 fails, fallback to {0, 2}

        asyncio.run(scenario())
        assert coordinator.metrics.fallbacks == 1
        assert coordinator.metrics.hedges_issued == 0

    def test_hedging_off_by_default_contacts_only_the_quorum(self):
        replicas, transport, coordinator = build(
            lambda r: InProcessTransport(r, seed=0)
        )

        async def scenario():
            await coordinator.write("k", "v")

        asyncio.run(scenario())
        assert transport.calls == 2  # exactly the primary's two members
        assert coordinator.metrics.hedges_issued == 0
        assert replicas[2].writes_applied == 0


class TestDeferredHedging:
    def test_fast_path_issues_no_spares(self):
        replicas, transport, coordinator = build(
            lambda r: InProcessTransport(r, seed=0),
            hedge_spares=1,
            hedge_delay_ms=5.0,
        )

        async def scenario():
            for index in range(10):
                await coordinator.write(f"k{index}", index)

        asyncio.run(scenario())
        assert coordinator.metrics.hedges_issued == 0
        assert transport.calls == 20  # 10 ops x 2 primary members, no spares

    def test_member_failure_triggers_the_spares_immediately(self):
        # The delay is far beyond the test budget: only the
        # failure-triggered hedge path can complete the op this fast.
        replicas, transport, coordinator = build(
            lambda r: InProcessTransport(r, seed=0),
            hedge_spares=1,
            hedge_delay_ms=60_000.0,
        )
        transport.crash(1)

        async def scenario():
            ack = await coordinator.write("k", "v")
            assert ack.attempts == 1
            await coordinator.drain()

        asyncio.run(scenario())
        assert coordinator.metrics.hedges_issued == 1
        assert coordinator.metrics.hedges_won == 1
        assert coordinator.metrics.fallbacks == 0

    def test_delay_timer_hedges_around_a_wall_clock_straggler(self):
        replicas, transport, coordinator = build(
            lambda r: StallTransport(r, slow_id=1, delay_s=0.15),
            hedge_spares=1,
            hedge_delay_ms=10.0,
            timeout=10_000.0,
        )

        async def scenario():
            ack = await coordinator.write("k", "v")
            assert ack.attempts == 1
            # The phase completed via {0, 2} while replica 1 is still in
            # flight; the straggler was absorbed, not discarded.
            assert coordinator.metrics.hedges_won == 1
            assert len(coordinator.metrics.straggler_latencies) == 0
            await coordinator.drain()
            assert len(coordinator.metrics.straggler_latencies) == 1

        asyncio.run(scenario())
        # Durability: the straggler's side effect still landed on replica 1.
        assert [r.writes_applied for r in replicas] == [1, 1, 1]
        assert coordinator.metrics.hedges_issued == 1


class TestHedgingUnderLatencySpikes:
    def test_latency_spike_timeout_is_hedged_within_one_attempt(self):
        system, strategy = pinned_system()
        replicas = [Replica(i) for i in range(3)]
        inner = InProcessTransport(replicas, seed=0)
        schedule = FaultSchedule(
            [LatencyFault(frozenset({1}), Window(0), extra=10_000.0)]
        )
        faulty = FaultyTransport(inner, schedule, seed=1)
        coordinator = Coordinator(
            system, faulty, strategy, seed=0, hedge_spares=1
        )

        async def scenario():
            ack = await coordinator.write("k", "v")
            assert ack.attempts == 1
            result = await coordinator.read("k")
            assert result.value == "v"
            assert result.stale is False
            await coordinator.drain()

        asyncio.run(scenario())
        metrics = coordinator.metrics
        assert metrics.timeouts >= 1  # the spiked replica kept missing deadlines
        assert metrics.hedges_won >= 1
        assert metrics.fallbacks == 0

    def test_latency_spiked_tcp_run_issues_hedges(self):
        # Regression for the kvbench `hedging.issued: 0` bug: the
        # deferred-hedge deadline was re-anchored to "now" on every
        # straggler poll, so over real sockets — where polls are
        # frequent — the timer receded forever and TCP hedged runs
        # never issued a spare.  The deadline is anchored once per
        # phase now; a spiked quorum member must trigger >= 1 hedge.
        from repro.service import start_tcp_replicas

        async def scenario():
            system, strategy = pinned_system()
            replicas = [Replica(i) for i in range(3)]
            servers, addresses = await start_tcp_replicas(replicas)
            schedule = FaultSchedule(
                [LatencyFault(frozenset({1}), Window(0), extra=10_000.0)]
            )
            faulty = FaultyTransport(TcpTransport(addresses), schedule, seed=1)
            coordinator = Coordinator(
                system, faulty, strategy, seed=0,
                hedge_spares=1, hedge_delay_ms=5.0,
            )
            try:
                ack = await coordinator.write("k", "v")
                assert ack.attempts == 1
                result = await coordinator.read("k")
                assert result.value == "v"
                await coordinator.drain()
            finally:
                await faulty.close()
                for server in servers:
                    server.close()
                for server in servers:
                    await server.wait_closed()
            return coordinator.metrics

        metrics = asyncio.run(scenario())
        assert metrics.hedges_issued >= 1
        assert metrics.hedges_won >= 1
        assert metrics.ops_failed == 0

    def test_chaos_invariants_hold_with_hedging_enabled(self):
        # The full chaos harness — crash epochs, latency spikes, drops,
        # duplicates, partitions — with hedged coordinators: safety must
        # be unaffected by perf hedging (acked writes durable, no stale
        # unflagged reads).
        system = MajorityQuorumSystem.of_size(5)
        for hedge_delay_ms in (0.0, 2.0):
            report = run_chaos(
                system,
                seed=7,
                config=ChaosConfig(
                    ops=150,
                    latency_spikes=3,
                    hedge_spares=1,
                    hedge_delay_ms=hedge_delay_ms,
                ),
            )
            assert report.ok, report.violations
            assert report.metrics.hedges_issued > 0

    def test_chaos_report_is_seed_deterministic_with_upfront_hedging(self):
        system = MajorityQuorumSystem.of_size(5)
        runs = [
            run_chaos(
                system,
                seed=11,
                config=ChaosConfig(ops=120, hedge_spares=1),
            ).to_dict()
            for _ in range(2)
        ]
        assert runs[0] == runs[1]


class TestAmortizedHotPath:
    def test_sampler_work_is_one_table_build_plus_lookups(self):
        # Acceptance criterion: per-op strategy sampling must be alias
        # lookups, not per-op O(m) rebuilds.
        system = MajorityQuorumSystem.of_size(5)
        strategy = Strategy.uniform(system)
        replicas = make_replicas(system)
        transport = InProcessTransport(replicas, seed=0)
        coordinator = Coordinator(system, transport, strategy, seed=0)

        async def scenario():
            for index in range(200):
                if index % 2:
                    await coordinator.read("k")
                else:
                    await coordinator.write("k", index)

        asyncio.run(scenario())
        stats = strategy.sampler_stats
        assert stats["alias_builds"] == 1
        assert stats["samples_drawn"] == 200  # exactly one draw per op

    def test_member_tuples_and_avoiding_strategies_are_reused(self):
        system = MajorityQuorumSystem.of_size(5)
        strategy = Strategy.uniform(system)
        transport = InProcessTransport(make_replicas(system), seed=0)
        coordinator = Coordinator(system, transport, strategy, seed=0)
        quorum = strategy.quorums[0]
        # Identity, not equality: the hot path returns the cached object.
        assert coordinator._members_for(quorum) is coordinator._members_for(quorum)
        blocked = frozenset({1})
        assert coordinator._avoiding_strategy("write", blocked) is (
            coordinator._avoiding_strategy("write", blocked)
        )
        spares_and_candidates = coordinator._hedge_plan("write", quorum)
        assert coordinator._hedge_plan("write", quorum) is spares_and_candidates
        # An unsplit pair canonicalises the read path onto the same
        # cached plans — nothing is computed twice.
        assert coordinator._hedge_plan("read", quorum) is spares_and_candidates
