"""Tests for the CLI and the figure renderers."""

import pytest

from repro.cli import build_system, main
from repro.systems import HierarchicalGrid, HierarchicalTriangle
from repro.viz import (
    render_figure1,
    render_figure2,
    render_hgrid,
    render_htriangle_division,
)


class TestBuildSystem:
    @pytest.mark.parametrize(
        "spec, n",
        [
            ("majority:15", 15),
            ("hqs:5x3", 15),
            ("cwlog:14", 14),
            ("grid:4x4", 16),
            ("h-grid:5x5", 25),
            ("h-t-grid:4x4", 16),
            ("h-triang:15", 15),
            ("y:15", 15),
            ("paths:13", 13),
            ("fpp:7", 7),
            ("tree:h2", 7),
            ("tgrid:4x4", 16),
            ("triangle:5", 15),
            ("diamond:3", 9),
            ("singleton:3", 3),
        ],
    )
    def test_catalogue(self, spec, n):
        assert build_system(spec).n == n

    def test_unknown_system(self):
        with pytest.raises(SystemExit):
            build_system("frobnicator:3")

    def test_bad_params(self):
        with pytest.raises(SystemExit):
            build_system("majority:xyz")
        with pytest.raises(SystemExit):
            build_system("h-triang:16")


class TestCommands:
    def test_info(self, capsys):
        main(["info", "h-triang:15"])
        out = capsys.readouterr().out
        assert "n             : 15" in out
        assert "min=5 max=5" in out

    def test_failure(self, capsys):
        main(["failure", "majority:5", "-p", "0.5"])
        out = capsys.readouterr().out
        assert "0.500000" in out

    def test_load(self, capsys):
        main(["load", "fpp:7"])
        out = capsys.readouterr().out
        assert "0.4285" in out

    def test_compare(self, capsys):
        main(["compare", "majority:15", "h-triang:15", "-p", "0.1"])
        out = capsys.readouterr().out
        assert "0.000034" in out
        assert "0.000677" in out

    def test_figures(self, capsys):
        main(["figures"])
        out = capsys.readouterr().out
        assert "Figure 1" in out
        assert "Figure 2" in out


class TestViz:
    def test_figure1_shape(self):
        text = render_figure1()
        grid_lines = [l for l in text.splitlines() if l and l[0] in ".CLB"]
        assert len(grid_lines) == 4
        assert all(len(l.split()) == 4 for l in grid_lines)

    def test_figure2_marks(self):
        body = render_figure2().splitlines()[2:]  # drop the header
        joined = "\n".join(body)
        assert joined.count("1") == 3  # T1 has 3 elements
        assert joined.count("G") == 6  # sub-grid has 6
        assert joined.count("2") == 6  # T2 has 6

    def test_render_hgrid_markers(self):
        grid = HierarchicalGrid.halving(2, 2)
        line = grid.full_lines()[0]
        text = render_hgrid(grid, line=line)
        assert "L" in text

    def test_render_division_requires_standard(self):
        custom = HierarchicalTriangle(3, subgrid="flat").grown("t2")
        with pytest.raises(ValueError):
            render_htriangle_division(custom)


class TestNewCommands:
    def test_dual(self, capsys):
        main(["dual", "h-triang:15", "--show", "2"])
        out = capsys.readouterr().out
        assert "self-dual     : True" in out

    def test_byzantine(self, capsys):
        main(["byzantine", "majority:5"])
        out = capsys.readouterr().out
        assert "masking threshold      : b = 0" in out

    def test_simulate(self, capsys):
        main(["simulate", "majority:5", "-p", "0.3", "--epochs", "3000"])
        out = capsys.readouterr().out
        assert "measured" in out
        assert "analytic  : 0.163080" in out


class TestCurveRendering:
    def test_compare_plot(self, capsys):
        main(["compare", "majority:5", "h-triang:15", "--plot", "-p", "0.3"])
        out = capsys.readouterr().out
        assert "A = majority" in out
        assert "B = h-triang5" in out
        assert "|" in out

    def test_render_wall(self):
        from repro.viz import render_wall

        text = render_wall([1, 2, 3])
        lines = text.splitlines()
        assert [line.count("o") for line in lines] == [1, 2, 3]

    def test_render_failure_curves_validation(self):
        from repro.viz import render_failure_curves
        from repro.systems import SingletonQuorumSystem

        with pytest.raises(ValueError):
            render_failure_curves([SingletonQuorumSystem.of_size(1)], points=1)
        with pytest.raises(ValueError):
            render_failure_curves(
                [SingletonQuorumSystem.of_size(1)] * 11
            )

    def test_curves_monotone_markers(self):
        from repro.viz import render_failure_curves
        from repro.systems import GridQuorumSystem

        text = render_failure_curves([GridQuorumSystem(3, 3)], points=10, height=8)
        assert "A = grid3x3" in text

    def test_critical(self, capsys):
        main(["critical", "h-triang:15", "-p", "0.15", "--top", "2"])
        out = capsys.readouterr().out
        assert "Birnbaum importance" in out
        assert "I = 0.011845" in out  # the T2 elements top the list at t=5
