"""Tests for the programmatic table regeneration (repro.tables)."""

import pytest

from repro.tables import (
    FailureRow,
    P_GRID,
    render_failure_table,
    table2,
    table4,
    table5,
)


class TestFailureTables:
    def test_table2_rows(self):
        rows = table2()
        assert len(rows) == 7
        by_name = {row.system: row for row in rows}
        # The exact columns agree with the published values.
        for name in ("majority(15)", "hqs[5x3]", "cwlog(14)", "y(15)", "h-triang(15)"):
            row = by_name[name]
            for measured, published in zip(row.measured, row.published):
                assert measured == pytest.approx(published, abs=1.5e-6)
        # The substitution row is flagged.
        assert "substitution" in by_name["paths(13)"].note

    def test_render(self):
        text = render_failure_table(table2()[:2], "Table 2 (excerpt)")
        assert "Table 2 (excerpt)" in text
        assert "paper" in text
        assert f"p={P_GRID[0]}" in text


class TestSizeLoadTable:
    def test_blocks_present(self):
        blocks = table4()
        assert set(blocks) == {15, 28, 100}

    def test_htriang_rows(self):
        blocks = table4()
        for scale, t in ((15, 5), (28, 7), (100, 14)):
            row = next(r for r in blocks[scale] if r.system == "h-triang")
            assert row.smallest == row.largest == t
            assert row.load == pytest.approx(t / row.n)

    def test_cwlog_tradeoff_loads(self):
        blocks = table4()
        cw15 = next(r for r in blocks[15] if r.system == "cwlog")
        assert cw15.load == pytest.approx(5 / 9, abs=1e-9)
        cw28 = next(r for r in blocks[28] if r.system == "cwlog")
        assert cw28.load == pytest.approx(0.4375, abs=1e-9)


class TestAsymptoticTable:
    def test_rows(self):
        rows = table5()
        assert len(rows) == 7
        triangle = next(r for r in rows if r["system"] == "h-triang")
        assert triangle["same size"] is True
        assert "sqrt" in triangle["load"]


class TestCLITable:
    @pytest.mark.parametrize("number, marker", [(2, "h-triang"), (5, "c(S)")])
    def test_cli_table(self, capsys, number, marker):
        from repro.cli import main

        main(["table", str(number)])
        out = capsys.readouterr().out
        assert marker in out

    def test_cli_table_bounds(self):
        from repro.cli import main

        with pytest.raises(SystemExit):
            main(["table", "9"])
