"""Tests for repro.core.bitpack: the shared packed-bitmask helpers."""

import numpy as np
import pytest

from repro.core import bitpack


def reference_pack(sets, size):
    """Naive per-element packing (the double loop bitpack replaces)."""
    lanes = bitpack.lanes_for(size)
    packed = np.zeros((len(sets), lanes), dtype=np.uint64)
    for row, members in enumerate(sets):
        for element in members:
            packed[row, element // 64] |= np.uint64(1) << np.uint64(element % 64)
    return packed


class TestPacking:
    def test_lanes_for(self):
        assert bitpack.lanes_for(0) == 1
        assert bitpack.lanes_for(1) == 1
        assert bitpack.lanes_for(64) == 1
        assert bitpack.lanes_for(65) == 2
        assert bitpack.lanes_for(128) == 2
        assert bitpack.lanes_for(129) == 3

    def test_matches_reference_single_lane(self):
        sets = [{0, 3, 5}, {1}, set(), {0, 1, 2, 3, 4, 5, 6, 7}]
        got = bitpack.pack_rows(sets, 8)
        assert got.shape == (4, 1)
        np.testing.assert_array_equal(got, reference_pack(sets, 8))

    def test_matches_reference_multi_lane(self):
        rng = np.random.default_rng(17)
        size = 200  # 4 lanes
        sets = [
            set(rng.choice(size, size=rng.integers(0, 40), replace=False).tolist())
            for _ in range(50)
        ]
        got = bitpack.pack_rows(sets, size)
        assert got.shape == (50, 4)
        np.testing.assert_array_equal(got, reference_pack(sets, size))

    def test_size_inferred_from_largest_element(self):
        packed = bitpack.pack_rows([{70}])
        assert packed.shape == (1, 2)
        assert packed[0, 1] == np.uint64(1) << np.uint64(6)

    def test_pack_one_is_first_row(self):
        members = {2, 9, 63}
        np.testing.assert_array_equal(
            bitpack.pack_one(members, 64), bitpack.pack_rows([members], 64)[0]
        )

    def test_empty_family(self):
        packed = bitpack.pack_rows([], 10)
        assert packed.shape == (0, 1)


class TestQueries:
    def test_popcounts(self):
        sets = [{0, 3, 5}, set(), set(range(100))]
        counts = bitpack.popcounts(bitpack.pack_rows(sets, 100))
        np.testing.assert_array_equal(counts, [3, 0, 100])

    def test_intersects_and_sizes(self):
        sets = [{0, 1}, {2, 3}, {1, 2}]
        packed = bitpack.pack_rows(sets, 4)
        mask = bitpack.pack_one({1, 3}, 4)
        np.testing.assert_array_equal(
            bitpack.intersects(packed, mask), [True, True, True]
        )
        np.testing.assert_array_equal(
            bitpack.intersection_sizes(packed, mask), [1, 1, 1]
        )
        empty = bitpack.pack_one(set(), 4)
        assert not bitpack.intersects(packed, empty).any()

    def test_is_subset_of_any(self):
        rows = bitpack.pack_rows([{0, 1}, {2, 3}], 4)
        assert bitpack.is_subset_of_any(bitpack.pack_one({0, 1, 2}, 4), rows)
        assert not bitpack.is_subset_of_any(bitpack.pack_one({0, 2}, 4), rows)
        nothing = bitpack.pack_rows([], 4)
        assert not bitpack.is_subset_of_any(bitpack.pack_one({0}, 4), nothing)


class TestMembershipMatrix:
    def test_matrix_contents(self):
        sets = [{0, 2}, {1}]
        matrix = bitpack.membership_matrix(sets, 3)
        np.testing.assert_array_equal(
            matrix, [[True, False, True], [False, True, False]]
        )

    def test_out_of_universe_element_rejected(self):
        with pytest.raises(ValueError):
            bitpack.membership_matrix([{5}], 3)
