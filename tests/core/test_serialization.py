"""Tests for JSON serialisation of quorum systems."""

import json

import pytest

from repro.core import ConstructionError, Universe
from repro.core.serialization import (
    FORMAT,
    dump,
    dumps,
    load,
    loads,
    system_from_dict,
    system_to_dict,
)
from repro.systems import (
    CrumblingWallQuorumSystem,
    HierarchicalTriangle,
    MajorityQuorumSystem,
    YQuorumSystem,
)


class TestRoundTrip:
    @pytest.mark.parametrize(
        "system",
        [
            MajorityQuorumSystem.of_size(5),
            HierarchicalTriangle(4),
            YQuorumSystem(4),
            CrumblingWallQuorumSystem.cwlog(14),
        ],
        ids=lambda s: s.system_name,
    )
    def test_quorums_preserved(self, system):
        restored = loads(dumps(system))
        assert set(restored.minimal_quorums()) == set(system.minimal_quorums())
        assert restored.universe == system.universe
        assert restored.system_name == system.system_name

    def test_metrics_preserved(self):
        system = HierarchicalTriangle(4)
        restored = loads(dumps(system))
        for p in (0.1, 0.4):
            assert restored.failure_probability(p) == pytest.approx(
                system.failure_probability(p), abs=1e-12
            )
        assert restored.load(method="lp") == pytest.approx(
            system.load(), abs=1e-6
        )

    def test_tuple_names_roundtrip(self):
        system = HierarchicalTriangle(3)
        restored = loads(dumps(system))
        assert (2, 1) in restored.universe

    def test_file_roundtrip(self, tmp_path):
        system = MajorityQuorumSystem.of_size(5)
        path = tmp_path / "maj5.json"
        dump(system, path)
        restored = load(path)
        assert restored.n == 5
        assert json.loads(path.read_text())["format"] == FORMAT


class TestValidation:
    def test_wrong_format_rejected(self):
        with pytest.raises(ConstructionError):
            system_from_dict({"format": "something-else"})

    def test_unserialisable_name_rejected(self):
        from repro.core import ExplicitQuorumSystem

        universe = Universe([object()])
        system = ExplicitQuorumSystem(universe, [{0}])
        with pytest.raises(ConstructionError):
            system_to_dict(system)

    def test_validate_flag(self):
        blob = {
            "format": FORMAT,
            "name": "broken",
            "names": [0, 1, 2, 3],
            "quorums": [[0, 1], [2, 3]],
        }
        from repro.core import IntersectionViolation

        with pytest.raises(IntersectionViolation):
            system_from_dict(blob)
        system = system_from_dict(blob, validate=False)
        assert system.num_minimal_quorums == 2
