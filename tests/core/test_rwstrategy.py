"""Tests for read/write strategy pairs (the 2-intersection invariant).

The deterministic fixture is a 4-element explicit system with quorums
``{0, 1}`` and ``{0, 2}``; the read support ``{0, 3}`` is *not* a quorum
of the system (it misses ``{1, 2}``-style transversals entirely) but it
does intersect every write support used below — exactly the situation
split read quorums are for.
"""

import numpy as np
import pytest

from repro.core import ExplicitQuorumSystem, ReadWriteStrategy, Strategy, Universe
from repro.core.errors import StrategyError


@pytest.fixture
def system():
    return ExplicitQuorumSystem(
        Universe.of_size(4), [{0, 1}, {0, 2}], name="explicit4"
    )


@pytest.fixture
def pair(system):
    return ReadWriteStrategy.from_quorums(
        system,
        [{0, 3}, {0, 1}],
        [0.5, 0.5],
        [{0, 1}, {0, 2}],
        [0.25, 0.75],
    )


class TestConstruction:
    def test_from_quorums_accepts_non_quorum_reads(self, system, pair):
        assert pair.is_split
        assert pair.system is system
        # {0, 3} is not a quorum — the write side would reject it.
        with pytest.raises(StrategyError):
            Strategy(system, [frozenset({0, 3})], [1.0])

    def test_two_intersection_violation_is_rejected(self, system):
        # {1, 3} misses the write quorum {0, 2} entirely.
        with pytest.raises(StrategyError, match="2-intersection"):
            ReadWriteStrategy.from_quorums(
                system, [{1, 3}], [1.0], [{0, 1}, {0, 2}], [0.5, 0.5]
            )

    def test_strategies_must_share_the_system(self, system):
        other = ExplicitQuorumSystem(
            Universe.of_size(4), [{0, 1}, {0, 2}], name="other"
        )
        reads = Strategy(other, [frozenset({0, 1})], [1.0])
        writes = Strategy(system, [frozenset({0, 1})], [1.0])
        with pytest.raises(StrategyError, match="same system"):
            ReadWriteStrategy(system, reads, writes)

    def test_lift_plain_strategy_is_degenerate(self, system):
        unified = Strategy.uniform(system)
        lifted = ReadWriteStrategy.lift(unified)
        assert not lifted.is_split
        assert lifted.reads is unified
        assert lifted.writes is unified

    def test_lift_pair_returns_it_unchanged(self, pair):
        assert ReadWriteStrategy.lift(pair) is pair

    def test_for_path(self, pair):
        assert pair.for_path("read") is pair.reads
        assert pair.for_path("write") is pair.writes
        with pytest.raises(StrategyError, match="unknown path"):
            pair.for_path("repair")


class TestInducedMetrics:
    def test_element_loads_blend_at_the_read_fraction(self, pair):
        reads = pair.reads.element_loads()
        writes = pair.writes.element_loads()
        np.testing.assert_allclose(pair.element_loads(0.0), writes)
        np.testing.assert_allclose(pair.element_loads(1.0), reads)
        np.testing.assert_allclose(
            pair.element_loads(0.25), 0.25 * reads + 0.75 * writes
        )

    def test_capacity_is_reciprocal_load(self, pair):
        for fr in (0.0, 0.4, 1.0):
            assert pair.capacity(fr) == pytest.approx(
                1.0 / pair.induced_load(fr)
            )

    def test_average_quorum_size_blends(self, pair):
        assert pair.average_quorum_size(1.0) == pytest.approx(
            pair.reads.average_quorum_size()
        )
        assert pair.average_quorum_size(0.0) == pytest.approx(
            pair.writes.average_quorum_size()
        )

    def test_fraction_out_of_range_rejected(self, pair):
        for bad in (-0.1, 1.1):
            with pytest.raises(StrategyError, match="read fraction"):
                pair.element_loads(bad)

    def test_min_read_write_intersection(self, system, pair):
        # Every support pair here meets only in element 0 at worst.
        assert pair.min_read_write_intersection() == 1
        deep = ReadWriteStrategy.from_quorums(
            system, [{0, 1, 2}], [1.0], [{0, 1, 2}], [1.0]
        )
        assert deep.min_read_write_intersection() == 3
        assert pair.min_read_quorum_size() == 2


class TestAvoiding:
    def test_both_sides_renormalize(self, pair):
        # Satellite check: restriction renormalises BOTH distributions.
        restricted = pair.avoiding({1})
        assert restricted is not None
        assert restricted.reads.weights.sum() == pytest.approx(1.0)
        assert restricted.writes.weights.sum() == pytest.approx(1.0)
        # Only {0, 3} survives on the read side, only {0, 2} on writes.
        assert list(restricted.reads.quorums) == [frozenset({0, 3})]
        assert restricted.reads.weights[0] == pytest.approx(1.0)
        assert list(restricted.writes.quorums) == [frozenset({0, 2})]
        assert restricted.writes.weights[0] == pytest.approx(1.0)
        assert restricted.is_split

    def test_none_when_either_side_empties(self, pair):
        # Element 0 is in every support set of both sides.
        assert pair.avoiding({0}) is None

    def test_unsplit_pair_stays_unsplit(self, system):
        lifted = ReadWriteStrategy.lift(Strategy.uniform(system))
        restricted = lifted.avoiding({1})
        assert restricted is not None
        assert not restricted.is_split
        assert restricted.reads is restricted.writes

    def test_least_damaged_per_path(self, pair):
        assert pair.least_damaged({3}, path="read") == frozenset({0, 1})
        assert pair.least_damaged({3}, path="write") in (
            frozenset({0, 1}),
            frozenset({0, 2}),
        )
