"""Tests for repro.core.universe."""

import pytest

from repro.core import ConstructionError, Universe


class TestConstruction:
    def test_of_size(self):
        u = Universe.of_size(4)
        assert u.size == 4
        assert list(u.names) == [0, 1, 2, 3]

    def test_named(self):
        u = Universe(["a", "b", "c"])
        assert u.size == 3
        assert u.id_of("b") == 1
        assert u.name_of(2) == "c"

    def test_tuple_names(self):
        u = Universe([(r, c) for r in range(2) for c in range(3)])
        assert u.id_of((1, 2)) == 5

    def test_duplicate_names_rejected(self):
        with pytest.raises(ConstructionError):
            Universe(["a", "a"])

    def test_empty_rejected(self):
        with pytest.raises(ConstructionError):
            Universe([])

    def test_nonpositive_size_rejected(self):
        with pytest.raises(ConstructionError):
            Universe.of_size(0)
        with pytest.raises(ConstructionError):
            Universe.of_size(-3)


class TestLookups:
    def test_unknown_name(self):
        with pytest.raises(ConstructionError):
            Universe.of_size(3).id_of("nope")

    def test_unknown_id(self):
        with pytest.raises(ConstructionError):
            Universe.of_size(3).name_of(99)

    def test_subset_roundtrip(self):
        u = Universe(["x", "y", "z"])
        ids = u.subset_ids(["x", "z"])
        assert ids == frozenset({0, 2})
        assert u.subset_names(ids) == frozenset({"x", "z"})

    def test_contains(self):
        u = Universe(["x", "y"])
        assert "x" in u
        assert "q" not in u

    def test_iteration_order(self):
        u = Universe(["c", "a", "b"])
        assert list(u) == ["c", "a", "b"]


class TestMasks:
    def test_mask_roundtrip(self):
        u = Universe.of_size(8)
        subset = {1, 3, 7}
        mask = u.mask_of(subset)
        assert mask == 0b10001010
        assert u.ids_of_mask(mask) == frozenset(subset)

    def test_empty_mask(self):
        u = Universe.of_size(4)
        assert u.mask_of([]) == 0
        assert u.ids_of_mask(0) == frozenset()


class TestEquality:
    def test_equal_universes(self):
        assert Universe.of_size(3) == Universe.of_size(3)
        assert hash(Universe.of_size(3)) == hash(Universe.of_size(3))

    def test_different_universes(self):
        assert Universe.of_size(3) != Universe.of_size(4)
        assert Universe(["a"]) != Universe(["b"])

    def test_repr_small_and_large(self):
        assert "Universe" in repr(Universe.of_size(3))
        assert "size=20" in repr(Universe.of_size(20))
