"""Tests for repro.core.sampling: the O(1) alias-method sampler."""

import numpy as np
import pytest

from repro.core.errors import StrategyError
from repro.core.sampling import AliasTable


class TestConstruction:
    def test_unnormalised_weights_accepted(self):
        table = AliasTable([2.0, 6.0])
        np.testing.assert_allclose(table.probabilities(), [0.25, 0.75])

    def test_probabilities_roundtrip(self):
        rng = np.random.default_rng(3)
        weights = rng.random(97)
        table = AliasTable(weights)
        np.testing.assert_allclose(
            table.probabilities(), weights / weights.sum(), atol=1e-12
        )

    def test_degenerate_single_outcome(self):
        table = AliasTable([5.0])
        rng = np.random.default_rng(0)
        assert all(table.sample(rng) == 0 for _ in range(10))

    def test_zero_weight_entries_never_drawn(self):
        table = AliasTable([0.0, 1.0, 0.0])
        rng = np.random.default_rng(1)
        draws = table.sample_many(rng, 1000)
        assert set(draws.tolist()) == {1}

    def test_bad_weights_rejected(self):
        for bad in ([], [-1.0, 2.0], [0.0, 0.0], [np.inf, 1.0], [np.nan]):
            with pytest.raises(StrategyError):
                AliasTable(bad)
        with pytest.raises(StrategyError):
            AliasTable(np.ones((2, 2)))


class TestSampling:
    def test_empirical_distribution_matches_weights(self):
        weights = [0.5, 0.3, 0.15, 0.05]
        table = AliasTable(weights)
        rng = np.random.default_rng(42)
        draws = table.sample_many(rng, 200_000)
        observed = np.bincount(draws, minlength=4) / draws.size
        np.testing.assert_allclose(observed, weights, atol=0.01)

    def test_single_draws_match_weights(self):
        table = AliasTable([0.2, 0.8])
        rng = np.random.default_rng(7)
        draws = [table.sample(rng) for _ in range(20_000)]
        assert np.mean(draws) == pytest.approx(0.8, abs=0.02)

    def test_deterministic_under_seed(self):
        table = AliasTable([0.1, 0.2, 0.7])
        a = [table.sample(np.random.default_rng(5)) for _ in range(1)]
        first = table.sample_many(np.random.default_rng(9), 50)
        second = table.sample_many(np.random.default_rng(9), 50)
        np.testing.assert_array_equal(first, second)
        assert a == [AliasTable([0.1, 0.2, 0.7]).sample(np.random.default_rng(5))]

    def test_one_uniform_per_draw(self):
        # The draw stream consumes exactly one rng.random() per sample, so
        # single draws and a vectorised draw agree under the same seed.
        table = AliasTable([0.4, 0.35, 0.25])
        singles = [table.sample(np.random.default_rng(11)) for _ in range(1)]
        batch = table.sample_many(np.random.default_rng(11), 1)
        assert singles[0] == int(batch[0])

    def test_samples_drawn_counter(self):
        table = AliasTable([1.0, 1.0])
        rng = np.random.default_rng(0)
        table.sample(rng)
        table.sample_many(rng, 9)
        assert table.samples_drawn == 10
        assert "drawn=10" in repr(table)

    def test_negative_count_rejected(self):
        with pytest.raises(StrategyError):
            AliasTable([1.0]).sample_many(np.random.default_rng(0), -1)
