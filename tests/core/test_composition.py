"""Tests for repro.core.composition."""

import pytest

from repro.core import (
    ComposedQuorumSystem,
    ConstructionError,
    ExplicitQuorumSystem,
    Universe,
    compose_universes,
)
from repro.analysis import failure_probability_exhaustive
from ..conftest import tiny_majority


def pair_system():
    """2-of-2 trivial system (both elements needed)."""
    return ExplicitQuorumSystem(Universe.of_size(2), [{0, 1}], name="both")


class TestComposeUniverses:
    def test_sizes_and_offsets(self):
        universe, offsets = compose_universes([Universe.of_size(2), Universe.of_size(3)])
        assert universe.size == 5
        assert offsets[0] == {0: 0, 1: 1}
        assert offsets[1] == {0: 2, 1: 3, 2: 4}

    def test_names_are_tagged(self):
        universe, _ = compose_universes([Universe.of_size(1), Universe.of_size(1)])
        assert (0, 0) in universe
        assert (1, 0) in universe


class TestComposition:
    def test_inner_count_must_match(self):
        with pytest.raises(ConstructionError):
            ComposedQuorumSystem(tiny_majority(3), [pair_system()] * 2)

    def test_hqs_like_composition(self):
        # Majority-of-3 of majority-of-3: the 9-element HQS cell.
        outer = tiny_majority(3)
        composed = ComposedQuorumSystem(outer, [tiny_majority(3)] * 3)
        assert composed.n == 9
        # Quorum = 2 inner quorums of size 2 -> size 4; C(3,2)^... count:
        # choose 2 of 3 groups, 3 inner quorums each -> 3 * 3 * 3 = 27.
        assert composed.num_minimal_quorums == 27
        assert composed.smallest_quorum_size() == 4
        composed.verify_intersection()

    def test_composition_preserves_intersection(self):
        outer = tiny_majority(5)
        inners = [tiny_majority(3) for _ in range(5)]
        composed = ComposedQuorumSystem(outer, inners)
        composed.verify_intersection()

    def test_structural_failure_matches_exhaustive(self):
        outer = tiny_majority(3)
        composed = ComposedQuorumSystem(outer, [tiny_majority(3)] * 3)
        for p in (0.1, 0.3, 0.5):
            structural = composed.failure_probability_exact(p)
            exhaustive = failure_probability_exhaustive(composed, p)
            assert structural == pytest.approx(exhaustive, abs=1e-12)

    def test_heterogeneous_inners(self):
        outer = pair_system()
        composed = ComposedQuorumSystem(outer, [tiny_majority(3), pair_system()])
        assert composed.n == 5
        composed.verify_intersection()
        structural = composed.failure_probability_exact(0.2)
        exhaustive = failure_probability_exhaustive(composed, 0.2)
        assert structural == pytest.approx(exhaustive, abs=1e-12)

    def test_lift_inner_quorum(self):
        outer = pair_system()
        composed = ComposedQuorumSystem(outer, [pair_system(), pair_system()])
        lifted = composed.lift_inner_quorum(1, frozenset({0, 1}))
        assert lifted == frozenset({2, 3})
