"""Tests for repro.core.strategy."""

import numpy as np
import pytest

from repro.core import ExplicitQuorumSystem, Strategy, StrategyError, Universe


@pytest.fixture
def star():
    """Star system: every quorum goes through element 0."""
    return ExplicitQuorumSystem(
        Universe.of_size(4), [{0, 1}, {0, 2}, {0, 3}], name="star"
    )


class TestValidation:
    def test_weights_must_sum_to_one(self, star):
        with pytest.raises(StrategyError):
            Strategy(star, list(star.minimal_quorums()), [0.2, 0.2, 0.2])

    def test_weight_count_must_match(self, star):
        with pytest.raises(StrategyError):
            Strategy(star, list(star.minimal_quorums()), [0.5, 0.5])

    def test_negative_weights_rejected(self, star):
        with pytest.raises(StrategyError):
            Strategy(star, list(star.minimal_quorums()), [1.5, -0.25, -0.25])

    def test_empty_support_rejected(self, star):
        with pytest.raises(StrategyError):
            Strategy(star, [], [])

    def test_non_quorum_support_rejected(self, star):
        with pytest.raises(StrategyError):
            Strategy(star, [frozenset({1, 2})], [1.0])

    def test_superset_support_allowed(self, star):
        strategy = Strategy(star, [frozenset({0, 1, 2})], [1.0])
        assert strategy.induced_load() == 1.0


class TestLoads:
    def test_star_center_load_is_one(self, star):
        strategy = Strategy.uniform(star)
        loads = strategy.element_loads()
        assert loads[0] == pytest.approx(1.0)
        assert loads[1] == pytest.approx(1 / 3)
        assert strategy.induced_load() == pytest.approx(1.0)

    def test_average_quorum_size(self, star):
        strategy = Strategy.uniform(star)
        assert strategy.average_quorum_size() == pytest.approx(2.0)

    def test_load_imbalance(self, star):
        strategy = Strategy.uniform(star)
        # Loads: (1, 1/3, 1/3, 1/3); mean = 0.5; imbalance = 2.
        assert strategy.load_imbalance() == pytest.approx(2.0)

    def test_single_strategy(self, star):
        strategy = Strategy.single(star, {0, 1})
        loads = strategy.element_loads()
        assert loads[0] == loads[1] == 1.0
        assert loads[2] == loads[3] == 0.0

    def test_from_mapping(self, star):
        quorums = list(star.minimal_quorums())
        strategy = Strategy.from_mapping(
            star, {quorums[0]: 0.5, quorums[1]: 0.5}
        )
        assert strategy.average_quorum_size() == pytest.approx(2.0)


class TestSampling:
    def test_sample_respects_support(self, star):
        strategy = Strategy.uniform(star)
        rng = np.random.default_rng(0)
        for _ in range(20):
            assert strategy.sample(rng) in strategy.quorums

    def test_sample_distribution(self, star):
        quorums = list(star.minimal_quorums())
        strategy = Strategy(star, quorums, [0.8, 0.1, 0.1])
        rng = np.random.default_rng(1)
        draws = [strategy.sample(rng) for _ in range(2000)]
        frequency = draws.count(quorums[0]) / len(draws)
        assert 0.75 < frequency < 0.85

    def test_weights_are_copied(self, star):
        strategy = Strategy.uniform(star)
        weights = strategy.weights
        weights[0] = 99.0
        assert strategy.weights[0] == pytest.approx(1 / 3)

    def test_sample_sequence_deterministic_under_seed(self, star):
        # The coordinator replays benchmarks from a seed: identical seeds
        # must give identical quorum sequences, distinct seeds may not.
        strategy = Strategy.uniform(star)
        first = [strategy.sample(np.random.default_rng(7)) for _ in range(1)]
        runs = [
            [strategy.sample(rng) for _ in range(50)]
            for rng in (np.random.default_rng(42), np.random.default_rng(42))
        ]
        assert runs[0] == runs[1]
        assert first[0] in strategy.quorums

    def test_sample_index_matches_sample(self, star):
        strategy = Strategy.uniform(star)
        via_index = [
            strategy.quorums[strategy.sample_index(np.random.default_rng(3))]
            for _ in range(5)
        ]
        via_sample = [strategy.sample(np.random.default_rng(3)) for _ in range(5)]
        assert via_index == via_sample

    def test_sample_many_matches_weights_within_tolerance(self, star):
        quorums = list(star.minimal_quorums())
        strategy = Strategy(star, quorums, [0.6, 0.3, 0.1])
        draws = strategy.sample_many(np.random.default_rng(11), 5000)
        assert len(draws) == 5000
        for quorum, weight in zip(quorums, [0.6, 0.3, 0.1]):
            frequency = draws.count(quorum) / len(draws)
            assert frequency == pytest.approx(weight, abs=0.03)

    def test_sample_many_deterministic_and_validated(self, star):
        strategy = Strategy.uniform(star)
        a = strategy.sample_many(np.random.default_rng(5), 40)
        b = strategy.sample_many(np.random.default_rng(5), 40)
        assert a == b
        assert strategy.sample_many(np.random.default_rng(5), 0) == []
        with pytest.raises(StrategyError):
            strategy.sample_many(np.random.default_rng(5), -1)

    def test_ranked_quorums_by_descending_weight(self, star):
        quorums = list(star.minimal_quorums())
        strategy = Strategy(star, quorums, [0.2, 0.7, 0.1])
        ranked = strategy.ranked_quorums()
        assert ranked[0] == quorums[1]
        assert set(ranked) == set(quorums)


class TestAvoiding:
    def test_avoiding_renormalises(self, star):
        quorums = list(star.minimal_quorums())  # {0,1}, {0,2}, {0,3}
        strategy = Strategy(star, quorums, [0.5, 0.25, 0.25])
        restricted = strategy.avoiding({1})
        assert restricted is not None
        assert all(1 not in q for q in restricted.quorums)
        assert restricted.weights.sum() == pytest.approx(1.0)
        # {0,2} and {0,3} keep their 1:1 ratio after renormalisation.
        assert sorted(restricted.weights) == pytest.approx([0.5, 0.5])

    def test_avoiding_the_center_is_impossible(self, star):
        strategy = Strategy.uniform(star)
        assert strategy.avoiding({0}) is None

    def test_avoiding_nothing_keeps_support(self, star):
        strategy = Strategy.uniform(star)
        restricted = strategy.avoiding(set())
        assert restricted is not None
        assert set(restricted.quorums) == set(strategy.quorums)

    def test_avoiding_zero_weight_survivors_falls_back_to_uniform(self, star):
        quorums = list(star.minimal_quorums())
        strategy = Strategy(star, quorums, [1.0, 0.0, 0.0])
        restricted = strategy.avoiding({1})  # only zero-weight quorums survive
        assert restricted is not None
        assert sorted(restricted.weights) == pytest.approx([0.5, 0.5])

    def test_avoiding_the_whole_universe_is_none(self, star):
        # Down-set equals the universe: no quorum can avoid it, and the
        # coordinator's optimistic-reset path relies on getting None here
        # rather than an error.
        strategy = Strategy.uniform(star)
        assert strategy.avoiding(set(star.universe.ids)) is None

    def test_avoiding_a_superset_of_the_universe_is_none(self, star):
        strategy = Strategy.uniform(star)
        assert strategy.avoiding(set(range(100))) is None


class TestLeastDamaged:
    def test_empty_down_set_returns_heaviest_quorum(self, star):
        quorums = list(star.minimal_quorums())
        strategy = Strategy(star, quorums, [0.2, 0.5, 0.3])
        assert strategy.least_damaged(set()) == quorums[1]

    def test_minimal_overlap_wins(self, star):
        quorums = list(star.minimal_quorums())  # {0,1}, {0,2}, {0,3}
        strategy = Strategy(star, quorums, [0.6, 0.3, 0.1])
        # {1} hits only the heaviest quorum; the best untouched one wins.
        assert strategy.least_damaged({1}) == frozenset({0, 2})

    def test_total_outage_still_returns_a_quorum(self, star):
        # Unlike avoiding(), least_damaged() never gives up — degraded
        # reads probe it even when everything looks down.
        strategy = Strategy(star, list(star.minimal_quorums()), [0.2, 0.5, 0.3])
        probe = strategy.least_damaged(set(star.universe.ids))
        assert probe == frozenset({0, 2})  # every overlap ties; weight decides

    def test_weight_breaks_overlap_ties(self, star):
        quorums = list(star.minimal_quorums())
        strategy = Strategy(star, quorums, [0.1, 0.1, 0.8])
        # {0} touches every quorum equally: the heaviest is least damaged.
        assert strategy.least_damaged({0}) == frozenset({0, 3})


class TestHotPathCaches:
    """The serving hot path must not redo O(m) work per operation."""

    def test_alias_table_built_once(self, star):
        strategy = Strategy.uniform(star)
        assert strategy.sampler_stats == {"alias_builds": 0, "samples_drawn": 0}
        rng = np.random.default_rng(0)
        for _ in range(500):
            strategy.sample_index(rng)
        stats = strategy.sampler_stats
        assert stats["alias_builds"] == 1
        assert stats["samples_drawn"] == 500

    def test_quorum_members_cached_and_sorted(self, star):
        strategy = Strategy.uniform(star)
        members = strategy.quorum_members()
        assert strategy.quorum_members() is members  # no per-call rebuild
        for quorum, resolved in zip(strategy.quorums, members):
            assert resolved == tuple(sorted(quorum))

    def test_packed_quorums_cached_and_correct(self, star):
        from repro.core import bitpack

        strategy = Strategy.uniform(star)
        packed = strategy.packed_quorums()
        assert strategy.packed_quorums() is packed
        np.testing.assert_array_equal(
            packed, bitpack.pack_rows(strategy.quorums, star.n)
        )

    def test_ranked_order_cached_and_indexes_ranked_quorums(self, star):
        quorums = list(star.minimal_quorums())
        strategy = Strategy(star, quorums, [0.2, 0.7, 0.1])
        order = strategy.ranked_order()
        assert strategy.ranked_order() is order
        assert [strategy.quorums[j] for j in order] == strategy.ranked_quorums()
