"""Tests for repro.core.strategy."""

import numpy as np
import pytest

from repro.core import ExplicitQuorumSystem, Strategy, StrategyError, Universe


@pytest.fixture
def star():
    """Star system: every quorum goes through element 0."""
    return ExplicitQuorumSystem(
        Universe.of_size(4), [{0, 1}, {0, 2}, {0, 3}], name="star"
    )


class TestValidation:
    def test_weights_must_sum_to_one(self, star):
        with pytest.raises(StrategyError):
            Strategy(star, list(star.minimal_quorums()), [0.2, 0.2, 0.2])

    def test_weight_count_must_match(self, star):
        with pytest.raises(StrategyError):
            Strategy(star, list(star.minimal_quorums()), [0.5, 0.5])

    def test_negative_weights_rejected(self, star):
        with pytest.raises(StrategyError):
            Strategy(star, list(star.minimal_quorums()), [1.5, -0.25, -0.25])

    def test_empty_support_rejected(self, star):
        with pytest.raises(StrategyError):
            Strategy(star, [], [])

    def test_non_quorum_support_rejected(self, star):
        with pytest.raises(StrategyError):
            Strategy(star, [frozenset({1, 2})], [1.0])

    def test_superset_support_allowed(self, star):
        strategy = Strategy(star, [frozenset({0, 1, 2})], [1.0])
        assert strategy.induced_load() == 1.0


class TestLoads:
    def test_star_center_load_is_one(self, star):
        strategy = Strategy.uniform(star)
        loads = strategy.element_loads()
        assert loads[0] == pytest.approx(1.0)
        assert loads[1] == pytest.approx(1 / 3)
        assert strategy.induced_load() == pytest.approx(1.0)

    def test_average_quorum_size(self, star):
        strategy = Strategy.uniform(star)
        assert strategy.average_quorum_size() == pytest.approx(2.0)

    def test_load_imbalance(self, star):
        strategy = Strategy.uniform(star)
        # Loads: (1, 1/3, 1/3, 1/3); mean = 0.5; imbalance = 2.
        assert strategy.load_imbalance() == pytest.approx(2.0)

    def test_single_strategy(self, star):
        strategy = Strategy.single(star, {0, 1})
        loads = strategy.element_loads()
        assert loads[0] == loads[1] == 1.0
        assert loads[2] == loads[3] == 0.0

    def test_from_mapping(self, star):
        quorums = list(star.minimal_quorums())
        strategy = Strategy.from_mapping(
            star, {quorums[0]: 0.5, quorums[1]: 0.5}
        )
        assert strategy.average_quorum_size() == pytest.approx(2.0)


class TestSampling:
    def test_sample_respects_support(self, star):
        strategy = Strategy.uniform(star)
        rng = np.random.default_rng(0)
        for _ in range(20):
            assert strategy.sample(rng) in strategy.quorums

    def test_sample_distribution(self, star):
        quorums = list(star.minimal_quorums())
        strategy = Strategy(star, quorums, [0.8, 0.1, 0.1])
        rng = np.random.default_rng(1)
        draws = [strategy.sample(rng) for _ in range(2000)]
        frequency = draws.count(quorums[0]) / len(draws)
        assert 0.75 < frequency < 0.85

    def test_weights_are_copied(self, star):
        strategy = Strategy.uniform(star)
        weights = strategy.weights
        weights[0] = 99.0
        assert strategy.weights[0] == pytest.approx(1 / 3)
