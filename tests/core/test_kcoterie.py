"""Tests for k-coteries and k-mutual exclusion."""

import pytest

from repro.core import ConstructionError, KCoterie, AnalysisError, Strategy
from repro.core.kcoterie import _max_disjoint
from repro.systems import HierarchicalTriangle, MajorityQuorumSystem


class TestMaxDisjoint:
    def test_counts_disjoint_family(self):
        quorums = [frozenset({0, 1}), frozenset({2, 3}), frozenset({1, 2})]
        assert _max_disjoint(quorums, 5) == 2

    def test_stop_at_caps_search(self):
        quorums = [frozenset({i}) for i in range(6)]
        assert _max_disjoint(quorums, 3) == 3  # stops early


class TestConstructions:
    def test_k_majority_conditions(self):
        coterie = KCoterie.k_majority(7, 2)
        coterie.verify()
        assert coterie.smallest_quorum_size() == 3  # 7 // 3 + 1

    def test_k1_majority_is_plain_majority(self):
        k1 = KCoterie.k_majority(5, 1)
        majority = MajorityQuorumSystem.of_size(5)
        assert set(k1.quorums) == set(majority.minimal_quorums())

    def test_k_majority_infeasible(self):
        # n=5, k=3: size = 5//4+1 = 2 and 3*2 > 5.
        with pytest.raises(ConstructionError):
            KCoterie.k_majority(5, 3)

    def test_k_singleton(self):
        coterie = KCoterie.k_singleton(5, 3)
        coterie.verify()
        assert len(coterie.quorums) == 3
        with pytest.raises(ConstructionError):
            KCoterie.k_singleton(2, 3)

    def test_from_coterie(self):
        lifted = KCoterie.from_coterie(HierarchicalTriangle(4))
        lifted.verify()
        assert lifted.k == 1

    def test_disjoint_union(self):
        union = KCoterie.disjoint_union(
            [HierarchicalTriangle(2), HierarchicalTriangle(2), HierarchicalTriangle(2)]
        )
        union.verify()
        assert union.k == 3
        assert union.n == 9

    def test_bad_k(self):
        from repro.core import Universe

        with pytest.raises(ConstructionError):
            KCoterie(Universe.of_size(2), [{0}], 0)

    def test_overconstrained_family_rejected(self):
        from repro.core import Universe

        # A single quorum cannot yield 2 disjoint quorums.
        with pytest.raises(ConstructionError):
            KCoterie(Universe.of_size(4), [{0, 1}], 2)

    def test_underconstrained_family_rejected(self):
        from repro.core import Universe

        # Three disjoint singletons are NOT a 2-coterie (3 concurrent).
        with pytest.raises(ConstructionError):
            KCoterie(Universe.of_size(3), [{0}, {1}, {2}], 2)


class TestAvailability:
    def test_availability_vs_coterie(self):
        # The 2-majority of 7 has smaller quorums than majority-of-7, so
        # better single-quorum availability.
        two = KCoterie.k_majority(7, 2)
        one = MajorityQuorumSystem.of_size(7)
        for p in (0.2, 0.4):
            assert two.availability(p) > 1.0 - one.failure_probability(p)

    def test_concurrency_availability_decreasing_in_j(self):
        coterie = KCoterie.k_majority(7, 2)
        p = 0.2
        j1 = coterie.concurrency_availability(p, 1)
        j2 = coterie.concurrency_availability(p, 2)
        assert j1 == pytest.approx(coterie.availability(p), abs=1e-12)
        assert j2 < j1

    def test_concurrency_validation(self):
        coterie = KCoterie.k_majority(7, 2)
        with pytest.raises(AnalysisError):
            coterie.concurrency_availability(0.2, 3)


class TestKMutexSimulation:
    def _run(self, coterie, requests, hold=30.0):
        from repro.sim import MutexMonitor, MutexNode, Network, Simulator

        sim = Simulator(seed=0)
        net = Network(sim)
        nodes = [MutexNode(i, net) for i in range(coterie.n)]
        monitor = MutexMonitor(capacity=coterie.k)
        quorums = list(coterie.quorums)

        def make(node, quorum):
            def acquired():
                monitor.enter(node.node_id)

                def leave():
                    monitor.leave(node.node_id)
                    node.release_cs()

                sim.schedule(hold, leave)

            node.request_cs(quorum, acquired)

        for index, quorum in enumerate(requests):
            sim.schedule(0.1 * index, make, nodes[index], quorums[quorum])
        sim.run(until=100_000)
        return monitor

    def test_two_concurrent_holders_allowed(self):
        coterie = KCoterie.k_majority(7, 2)
        # Pick two disjoint quorums: {0,1,2} and {3,4,5} exist in the family.
        quorums = list(coterie.quorums)
        disjoint = []
        for i, first in enumerate(quorums):
            for j, second in enumerate(quorums):
                if not (first & second):
                    disjoint = [i, j]
                    break
            if disjoint:
                break
        monitor = self._run(coterie, disjoint)
        assert monitor.entries == 2
        assert monitor.max_concurrent == 2
        assert monitor.violations == 0

    def test_never_more_than_k(self):
        coterie = KCoterie.k_majority(7, 2)
        monitor = self._run(coterie, list(range(6)), hold=5.0)
        assert monitor.entries == 6
        assert monitor.violations == 0
        assert monitor.max_concurrent <= 2
