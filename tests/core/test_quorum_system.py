"""Tests for repro.core.quorum_system."""

import pytest

from repro.core import (
    ConstructionError,
    ExplicitQuorumSystem,
    IntersectionViolation,
    Universe,
    reduce_to_coterie,
)
from ..conftest import brute_force_minimal_transversals, tiny_majority


class TestReduceToCoterie:
    def test_removes_duplicates(self):
        quorums = [frozenset({0, 1}), frozenset({0, 1})]
        assert reduce_to_coterie(quorums) == (frozenset({0, 1}),)

    def test_removes_dominated(self):
        quorums = [frozenset({0}), frozenset({0, 1}), frozenset({1, 2})]
        assert set(reduce_to_coterie(quorums)) == {frozenset({0}), frozenset({1, 2})}

    def test_antichain_preserved(self):
        quorums = [frozenset({0, 1}), frozenset({1, 2}), frozenset({0, 2})]
        assert set(reduce_to_coterie(quorums)) == set(quorums)

    def test_deterministic_order(self):
        quorums = [frozenset({2, 3}), frozenset({0, 1}), frozenset({1, 2})]
        assert reduce_to_coterie(quorums) == reduce_to_coterie(reversed(quorums))


class TestExplicitSystem:
    def test_basic(self, maj5):
        assert maj5.n == 5
        assert maj5.num_minimal_quorums == 10
        assert maj5.smallest_quorum_size() == 3
        assert maj5.largest_quorum_size() == 3
        assert maj5.has_uniform_quorum_size()

    def test_out_of_range_ids_rejected(self):
        with pytest.raises(ConstructionError):
            ExplicitQuorumSystem(Universe.of_size(2), [{0, 5}])

    def test_empty_rejected(self):
        with pytest.raises(ConstructionError):
            ExplicitQuorumSystem(Universe.of_size(2), [])

    def test_intersection_validated_eagerly(self):
        with pytest.raises(IntersectionViolation):
            ExplicitQuorumSystem(Universe.of_size(4), [{0, 1}, {2, 3}])

    def test_validation_can_be_skipped(self):
        system = ExplicitQuorumSystem(
            Universe.of_size(4), [{0, 1}, {2, 3}], validate=False
        )
        assert not system.is_coterie()

    def test_from_names(self):
        u = Universe(["a", "b", "c"])
        system = ExplicitQuorumSystem.from_names(u, [["a", "b"], ["b", "c"]])
        assert frozenset({0, 1}) in system.minimal_quorums()

    def test_named_quorums(self):
        u = Universe(["a", "b", "c"])
        system = ExplicitQuorumSystem.from_names(u, [["a", "b"], ["b", "c"]])
        assert frozenset({"a", "b"}) in system.named_quorums()


class TestMembership:
    def test_contains_quorum(self, maj5):
        assert maj5.contains_quorum({0, 1, 2})
        assert maj5.contains_quorum({0, 1, 2, 3})
        assert not maj5.contains_quorum({0, 1})

    def test_is_transversal(self, maj5):
        assert maj5.is_transversal({0, 1, 2})  # hits every 3-of-5
        assert not maj5.is_transversal({0, 1})

    def test_singleton_quorum_membership(self):
        system = ExplicitQuorumSystem(Universe.of_size(3), [{1}])
        assert system.contains_quorum({1})
        assert not system.contains_quorum({0, 2})


class TestDuality:
    def test_dual_matches_brute_force(self, maj5):
        dual = maj5.dual()
        assert set(dual.minimal_quorums()) == brute_force_minimal_transversals(maj5)

    def test_majority_odd_self_dual(self, maj5):
        assert maj5.is_self_dual()

    def test_majority_even_not_self_dual(self):
        system = tiny_majority(4)
        assert not system.is_self_dual()

    def test_dual_of_dual_is_identity(self):
        system = ExplicitQuorumSystem(
            Universe.of_size(4), [{0, 1}, {1, 2}, {0, 2, 3}]
        )
        double_dual = system.dual().dual()
        assert set(double_dual.minimal_quorums()) == set(system.minimal_quorums())

    def test_singleton_self_dual(self):
        system = ExplicitQuorumSystem(Universe.of_size(1), [{0}])
        assert system.is_self_dual()


class TestConversions:
    def test_to_explicit(self, maj5):
        frozen = maj5.to_explicit()
        assert set(frozen.minimal_quorums()) == set(maj5.minimal_quorums())

    def test_repr(self, maj5):
        assert "maj5" in repr(maj5)
