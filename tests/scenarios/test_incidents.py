"""Tests for the named SRE incident library and the scenario runner."""

import json

import pytest

from repro.cli import build_system, main
from repro.scenarios import (
    INCIDENTS,
    Scenario,
    digest,
    get_incident,
    list_incidents,
    run_scenario,
)
from repro.core.errors import ServiceError

EXPECTED_NAMES = {
    "incident-010-split-brain",
    "incident-011-replica-lag-read-repair-storm",
    "incident-012-hot-key-zipf",
    "incident-015-cache-avalanche",
    "net-104-lb-oscillation",
    "obs-103-slo-burn",
}


class TestLibrary:
    def test_ships_the_advertised_incidents(self):
        assert set(INCIDENTS) == EXPECTED_NAMES
        for name, scenario in INCIDENTS.items():
            assert isinstance(scenario, Scenario)
            assert scenario.name == name
            assert scenario.summary

    def test_get_incident_rejects_unknown_names(self):
        assert get_incident("obs-103-slo-burn") is INCIDENTS["obs-103-slo-burn"]
        with pytest.raises(ServiceError, match="unknown incident"):
            get_incident("incident-999-nope")

    def test_list_incidents_rows_are_sorted_and_complete(self):
        rows = list_incidents()
        assert [row["name"] for row in rows] == sorted(EXPECTED_NAMES)
        for row in rows:
            assert set(row) >= {"name", "summary", "system", "slo"}


class TestScorecards:
    @pytest.mark.parametrize("name", sorted(EXPECTED_NAMES))
    def test_every_incident_runs_clean_in_sim(self, name):
        scenario = get_incident(name)
        report, card = run_scenario(scenario, seed=0, mode="sim")
        assert report.ok, report.violations
        # Versioned header plus the full report snapshot.
        assert card["scorecard_version"] == 1
        assert card["scenario"] == name
        assert card["expect_violations"] is False
        assert card["seed"] == 0
        assert card["config"]["ops"] == scenario.config.ops
        block = card["invariants"]
        assert set(block) == {"checked", "ok", "violations", "violation_counts"}
        assert block["ok"] is True and block["violation_counts"] == {}
        # Every incident scores against its SLO.
        assert set(card["slo"]) >= {"targets", "observed", "error_budget", "met"}
        json.dumps(card)  # fully serialisable

    @pytest.mark.parametrize("name", sorted(EXPECTED_NAMES))
    def test_bit_reproducible_per_seed(self, name):
        scenario = get_incident(name)
        _, first = run_scenario(scenario, seed=3, mode="sim")
        _, second = run_scenario(scenario, seed=3, mode="sim")
        assert digest(first) == digest(second)
        _, other = run_scenario(scenario, seed=4, mode="sim")
        assert digest(first) != digest(other)

    def test_system_override_sweeps_families(self):
        scenario = get_incident("incident-010-split-brain")
        names = set()
        for spec in ("majority:5", "hgrid:4x4", "htriang:15"):
            report, card = run_scenario(
                scenario, seed=1, mode="sim", system_spec=spec
            )
            assert report.ok, (spec, report.violations)
            assert card["n"] == build_system(spec).universe.size
            names.add(card["system"])
        assert len(names) == 3  # each family is identified in the card

    def test_ops_override_rescales_the_fault_window(self):
        scenario = get_incident("incident-010-split-brain")
        report, card = run_scenario(scenario, seed=0, mode="sim", ops=80)
        assert report.ok, report.violations
        assert card["config"]["ops"] == 80
        # The partition window is a fraction of the run, not absolute.
        assert report.schedule.to_dict()["by_kind"].get("partition", 0) > 0


class TestSimWallParity:
    def test_incident_sim_and_wall_hashes_agree(self):
        # The migrated engine keeps the seed-parity contract: one
        # incident replayed under wall time produces the same trace
        # hashes as the virtual-time run (ops reduced to keep the wall
        # run fast; the split-brain window scales with ops).
        scenario = get_incident("incident-010-split-brain")
        sim_report, sim_card = run_scenario(
            scenario, seed=0, mode="sim", ops=80
        )
        wall_report, wall_card = run_scenario(
            scenario, seed=0, mode="wall", ops=80
        )
        assert sim_report.hashes == wall_report.hashes
        assert sim_card["hashes"] == wall_card["hashes"]
        assert sim_card["invariants"] == wall_card["invariants"]


class TestOpenLoopArrival:
    def test_obs_103_sustains_the_configured_rate_under_virtual_time(self):
        # Acceptance: open-loop Poisson arrival demonstrably keeps up
        # with its configured rate under the virtual clock — zero spawn
        # lag (modulo float noise) and achieved throughput within a few
        # percent of the 500 ops/s target.
        scenario = get_incident("obs-103-slo-burn")
        assert scenario.config.arrival == "poisson"
        report, card = run_scenario(scenario, seed=0, mode="sim")
        arrival = card["arrival"]
        assert arrival["mode"] == "poisson"
        assert arrival["rate_ops_per_s"] == 500.0
        assert arrival["max_spawn_lag_ms"] < 1e-6
        assert arrival["achieved_ops_per_s"] == pytest.approx(500.0, rel=0.05)

    def test_cache_avalanche_reports_the_cache_tier(self):
        report, card = run_scenario(
            get_incident("incident-015-cache-avalanche"), seed=0, mode="sim"
        )
        cache = card["cache"]
        assert cache["ttl_ms"] == 150.0 and cache["swr_ms"] == 50.0
        assert cache["hits"] > 0
        assert 0.0 < cache["hit_rate"] <= 1.0


class TestIncidentCli:
    def test_incident_list_json(self, capsys):
        main(["incident", "list", "--json"])
        rows = json.loads(capsys.readouterr().out)
        assert {row["name"] for row in rows} == EXPECTED_NAMES

    def test_incident_run_emits_the_scorecard(self, capsys):
        main([
            "incident", "run", "incident-010-split-brain",
            "--seed", "2", "--ops", "80", "--json",
        ])
        card = json.loads(capsys.readouterr().out)
        assert card["scenario"] == "incident-010-split-brain"
        assert card["scorecard_version"] == 1
        assert card["invariants"]["ok"] is True

    def test_incident_run_multi_seed_rollup(self, capsys):
        main([
            "incident", "run", "incident-010-split-brain",
            "--seeds", "2", "--ops", "80", "--json",
        ])
        payload = json.loads(capsys.readouterr().out)
        assert payload["all_ok"] is True
        assert payload["violations_total"] == 0
        assert [run["seed"] for run in payload["runs"]] == [0, 1]

    def test_incident_run_unknown_name_fails(self):
        with pytest.raises(SystemExit):
            main(["incident", "run", "incident-999-nope"])
