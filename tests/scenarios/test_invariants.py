"""Tests for the shared safety-invariant registry."""

from types import SimpleNamespace

from repro.scenarios import (
    BYZANTINE_INVARIANTS,
    CORE_INVARIANTS,
    INVARIANTS,
    audit_durability,
    audit_lie_detection,
    audit_lie_suspicion,
    audit_monotone,
    check_fabricated_read,
    check_fresh_read,
    check_issued_value,
    check_version_integrity,
)
from repro.scenarios.scorecard import invariants_block, violation_counts
from repro.service.replica import NULL_TIMESTAMP


class TestRegistry:
    def test_every_named_invariant_has_a_contract(self):
        for name in CORE_INVARIANTS + BYZANTINE_INVARIANTS:
            assert name in INVARIANTS
            assert INVARIANTS[name]

    def test_families_are_disjoint(self):
        assert not set(CORE_INVARIANTS) & set(BYZANTINE_INVARIANTS)


class TestReadTimeChecks:
    def test_fabricated_read_flags_registered_lies(self):
        violations = []
        check_fabricated_read(
            violations,
            op=3,
            client=1,
            key="k000",
            value="lie",
            timestamp=(4, 0),
            fabricated={"lie"},
        )
        assert [v["invariant"] for v in violations] == [
            "byzantine-fabricated-read"
        ]
        check_fabricated_read(
            violations,
            op=4,
            client=1,
            key="k000",
            value="honest",
            timestamp=(5, 0),
            fabricated={"lie"},
        )
        assert len(violations) == 1

    def test_version_integrity_exact_form(self):
        issued = {("k0", 3, 1): "v3"}
        violations = []
        # Known version with its issued value: clean.
        check_version_integrity(
            violations,
            op=0,
            client=0,
            key="k0",
            value="v3",
            timestamp=(3, 1),
            issued_values=issued,
        )
        assert violations == []
        # Null timestamp (never-written key) passes.
        check_version_integrity(
            violations,
            op=1,
            client=0,
            key="k0",
            value=None,
            timestamp=NULL_TIMESTAMP,
            issued_values=issued,
        )
        assert violations == []
        # Never-issued version and corrupted value both flag.
        check_version_integrity(
            violations,
            op=2,
            client=0,
            key="k0",
            value="x",
            timestamp=(9, 9),
            issued_values=issued,
        )
        check_version_integrity(
            violations,
            op=3,
            client=0,
            key="k0",
            value="corrupt",
            timestamp=(3, 1),
            issued_values=issued,
        )
        assert [v["invariant"] for v in violations] == ["version-integrity"] * 2
        assert "never-issued" in violations[0]["detail"]
        assert "issued as" in violations[1]["detail"]

    def test_issued_value_set_form(self):
        violations = []
        check_issued_value(
            violations, op=0, key="k0", value="v1", timestamp=(1, 0),
            issued={"v1", "v2"},
        )
        check_issued_value(
            violations, op=1, key="k0", value=None, timestamp=(0, -1),
            issued=set(),
        )
        assert violations == []
        check_issued_value(
            violations, op=2, key="k0", value="rogue", timestamp=(1, 0),
            issued={"v1"},
        )
        assert [v["invariant"] for v in violations] == ["version-integrity"]

    def test_fresh_read_staleness_contract(self):
        violations = []
        # Unflagged read older than the acknowledged max: violation.
        check_fresh_read(
            violations, op=0, key="k0", timestamp=(1, 0), stale=False,
            expected=(2, 0), client=1,
        )
        assert [v["invariant"] for v in violations] == [
            "no-stale-unflagged-read"
        ]
        assert violations[0]["client"] == 1
        # Flagged stale is exempt; no expectation is trivially fresh;
        # at-least-as-new passes.
        before = len(violations)
        check_fresh_read(
            violations, op=1, key="k0", timestamp=(1, 0), stale=True,
            expected=(2, 0),
        )
        check_fresh_read(
            violations, op=2, key="k0", timestamp=(1, 0), stale=False,
            expected=None,
        )
        check_fresh_read(
            violations, op=3, key="k0", timestamp=(2, 0), stale=False,
            expected=(2, 0),
        )
        assert len(violations) == before

    def test_fresh_read_client_key_optional(self):
        violations = []
        check_fresh_read(
            violations, op=0, key="k0", timestamp=(1, 0), stale=False,
            expected=(2, 0),
        )
        assert "client" not in violations[0]


def _replica(versions):
    """A minimal replica double: key -> (timestamp, value) or None."""

    def get(key):
        hit = versions.get(key)
        if hit is None:
            return None
        return SimpleNamespace(timestamp=hit[0], value=hit[1])

    return SimpleNamespace(get=get)


class TestAudits:
    def test_durability_newest_surviving_version_wins(self):
        violations = []
        replicas = [
            _replica({"k0": ((2, 0), "v2")}),
            _replica({"k0": ((3, 1), "v3")}),
            _replica({}),
        ]
        audit_durability(
            violations, key="k0", expected=(3, 1), acked_value="v3",
            replicas=replicas,
        )
        assert violations == []

    def test_durability_lost_write_flags(self):
        violations = []
        audit_durability(
            violations, key="k0", expected=(3, 1), acked_value="v3",
            replicas=[_replica({"k0": ((2, 0), "v2")})],
        )
        assert [v["invariant"] for v in violations] == ["acked-write-durable"]

    def test_durability_corrupted_value_flags(self):
        violations = []
        audit_durability(
            violations, key="k0", expected=(3, 1), acked_value="v3",
            replicas=[_replica({"k0": ((3, 1), "corrupt")})],
        )
        assert "acknowledged as" in violations[0]["detail"]

    def test_monotone_forward_journal_is_clean(self):
        violations = []
        audit_monotone(
            violations,
            {"k0": [(1, 0), (2, 0), (2, 1)]},
            replica=4,
        )
        assert violations == []

    def test_monotone_regression_flags_with_optional_shard(self):
        violations = []
        audit_monotone(
            violations,
            {"k0": [(2, 0), (1, 0)]},
            replica=4,
            shard="s1",
        )
        assert violations[0]["invariant"] == "replica-ts-monotone"
        assert violations[0]["shard"] == "s1"
        violations2 = []
        audit_monotone(violations2, {"k0": [(2, 0), (2, 0)]}, replica=4)
        assert "shard" not in violations2[0]

    def test_lie_detection_sound_within_budget(self):
        coordinator = SimpleNamespace(
            lied_replicas={3, 7}, suspicion_history={3, 7}, coordinator_id=0
        )
        violations = []
        audit_lie_detection(
            violations, coordinators=[coordinator], liars=[3], budget=1
        )
        assert [v["invariant"] for v in violations] == ["lie-detection-sound"]
        # Over budget, soundness is not guaranteed: the audit is skipped.
        violations2 = []
        audit_lie_detection(
            violations2, coordinators=[coordinator], liars=[3, 7], budget=1
        )
        assert violations2 == []

    def test_lie_suspicion_reflected(self):
        caught = SimpleNamespace(
            lied_replicas={3}, suspicion_history={3}, coordinator_id=0
        )
        missed = SimpleNamespace(
            lied_replicas={5}, suspicion_history=set(), coordinator_id=1
        )
        violations = []
        audit_lie_suspicion(violations, coordinators=[caught, missed])
        assert [v["invariant"] for v in violations] == [
            "lie-suspicion-reflected"
        ]
        assert violations[0]["client"] == 1


class TestScorecardHelpers:
    def test_violation_counts_histogram(self):
        violations = [
            {"invariant": "a"},
            {"invariant": "b"},
            {"invariant": "a"},
            {},
        ]
        assert violation_counts(violations) == {"a": 2, "b": 1, "unknown": 1}

    def test_invariants_block_shape(self):
        block = invariants_block(CORE_INVARIANTS, [])
        assert set(block) == {"checked", "ok", "violations", "violation_counts"}
        assert block["ok"] is True
        bad = invariants_block(CORE_INVARIANTS, [{"invariant": "x"}])
        assert bad["ok"] is False
        assert bad["violation_counts"] == {"x": 1}
