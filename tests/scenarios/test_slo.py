"""Tests for SLO targets and error-budget scoring."""

import pytest

from repro.core.errors import ServiceError
from repro.scenarios import SloTargets, slo_report


def _samples(total, failures, latency=5.0):
    """``total`` samples with the first ``failures`` failed."""
    return [
        (index, index >= failures, latency) for index in range(total)
    ]


class TestSloTargets:
    def test_validate_accepts_sane_targets(self):
        SloTargets(
            availability=0.99, latency_ms={"p95": 25.0, "p99.9": 80.0}
        ).validate()

    @pytest.mark.parametrize("availability", [0.0, 1.0, -0.1, 1.5])
    def test_rejects_degenerate_availability(self, availability):
        # availability == 1.0 means a zero error budget: burn rates
        # would divide by zero, so the target is rejected outright.
        with pytest.raises(ServiceError):
            SloTargets(availability=availability).validate()

    @pytest.mark.parametrize("label", ["95", "pfast", "p-1", "p101"])
    def test_rejects_malformed_latency_labels(self, label):
        with pytest.raises(ServiceError):
            SloTargets(latency_ms={label: 10.0}).validate()

    def test_rejects_nonpositive_ceiling_and_window(self):
        with pytest.raises(ServiceError):
            SloTargets(latency_ms={"p95": 0.0}).validate()
        with pytest.raises(ServiceError):
            SloTargets(window_ops=0).validate()

    def test_to_dict_sorted(self):
        targets = SloTargets(latency_ms={"p99": 50.0, "p50": 10.0})
        assert list(targets.to_dict()["latency_ms"]) == ["p50", "p99"]


class TestSloReport:
    def test_all_ok_run_meets_everything(self):
        targets = SloTargets(availability=0.99, latency_ms={"p95": 10.0})
        report = slo_report(_samples(200, failures=0), targets)
        assert report["observed"]["availability"] == 1.0
        assert report["error_budget"]["burn_rate"] == 0.0
        assert report["met"] == {
            "availability": True,
            "latency": {"p95": True},
            "ok": True,
        }

    def test_burn_rate_arithmetic(self):
        # 2% errors against a 1% budget: the run burned twice its budget.
        targets = SloTargets(availability=0.99, window_ops=50)
        report = slo_report(_samples(200, failures=4), targets)
        budget = report["error_budget"]
        assert budget["allowed_error_rate"] == pytest.approx(0.01)
        assert budget["observed_error_rate"] == pytest.approx(0.02)
        assert budget["burn_rate"] == pytest.approx(2.0)
        assert report["met"]["availability"] is False

    def test_windowed_burn_localises_the_spike(self):
        # All 4 failures inside the first 50-op window: that window burns
        # at 8x while the whole-run average is only 2x — the reason
        # burn-rate alerts are windowed.
        targets = SloTargets(availability=0.99, window_ops=50)
        report = slo_report(_samples(200, failures=4), targets)
        windows = report["windows"]
        assert len(windows) == 4
        assert windows[0]["burn_rate"] == pytest.approx(8.0)
        assert all(w["burn_rate"] == 0.0 for w in windows[1:])
        assert report["error_budget"]["max_window_burn_rate"] == pytest.approx(8.0)

    def test_ragged_final_window(self):
        targets = SloTargets(availability=0.9, window_ops=60)
        report = slo_report(_samples(100, failures=0), targets)
        assert [w["ops"] for w in report["windows"]] == [60, 40]
        assert [w["start_op"] for w in report["windows"]] == [0, 60]

    def test_failed_ops_stay_in_latency_population(self):
        # A timed-out op burned its deadline; hiding it would flatter p95.
        targets = SloTargets(availability=0.5, latency_ms={"p95": 10.0})
        samples = [(0, True, 1.0)] * 10 + [(10, False, 500.0)] * 10
        report = slo_report(samples, targets)
        assert report["observed"]["latency_ms"]["p95"] > 10.0
        assert report["met"]["latency"]["p95"] is False

    def test_empty_run(self):
        targets = SloTargets(availability=0.99)
        report = slo_report([], targets)
        assert report["observed"]["ops"] == 0
        assert report["observed"]["availability"] == 1.0
        assert report["windows"] == []
        assert report["error_budget"]["max_window_burn_rate"] == 0.0
