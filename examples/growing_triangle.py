"""Growing a hierarchical triangle without restructuring (§5).

The paper highlights that the h-triang construction accepts new elements
incrementally: a sub-triangle with ``m`` lines can be replaced by one
with ``m+1`` lines, and a sub-grid can be widened — each step provably
improving availability.  This example applies every growth rule to the
5-row triangle and measures the improvement, then grows a tiny system
step by step to show availability marching towards 1.

Run with::

    python examples/growing_triangle.py
"""

from repro import HierarchicalTriangle


def main() -> None:
    base = HierarchicalTriangle(5, subgrid="flat")
    p = 0.1
    print(f"base system: {base.system_name}, n={base.n}, "
          f"F_{p} = {base.failure_probability(p):.6f}\n")

    print(f"{'growth rule':<28} {'new n':>6} {'F_0.1':>12} {'improvement':>12}")
    for where, label in (
        ("t1", "grow sub-triangle 1"),
        ("t2", "grow sub-triangle 2"),
        ("grid", "widen sub-grid"),
    ):
        grown = base.grown(where)
        value = grown.failure_probability(p)
        factor = base.failure_probability(p) / value
        print(f"{label:<28} {grown.n:>6} {value:>12.6f} {factor:>11.2f}x")

    print("\nrepeated growth from a 2-row triangle (availability -> 1):")
    system = HierarchicalTriangle(2, subgrid="flat")
    print(f"  n={system.n:<4} F_0.1 = {system.failure_probability(p):.6f}")
    for step in range(4):
        system = system.grown(("t2", "grid", "t1", "t2")[step % 4])
        print(f"  n={system.n:<4} F_0.1 = {system.failure_probability(p):.6f}")

    print("\ncompare with rebuilding standard triangles:")
    for t in (2, 3, 4, 5, 6, 7):
        standard = HierarchicalTriangle(t)
        print(f"  t={t} (n={standard.n:>3}): F_0.1 = {standard.failure_probability(p):.6f}")


if __name__ == "__main__":
    main()
