"""Growing a live replicated register, and the Byzantine outlook.

Part 1 exercises §5's growth operations *online*: a replicated register
starts on a 6-process hierarchical triangle, is migrated (seal →
transfer → flip) to a grown 10-process triangle while holding data, and
ends up measurably more available.

Part 2 quantifies §7's closing remark about Byzantine quorum systems:
crash-model constructions tolerate no lying replicas (pairwise quorum
overlaps of 1), but boosting every element to a 2b+1 replica group
yields a b-masking system with smaller quorums than the masking-majority
baseline.

Run with::

    python examples/live_growth_and_byzantine.py
"""

from repro import HierarchicalTriangle
from repro.analysis import boost, byzantine_profile, masking_majority
from repro.sim import (
    Network,
    ReconfigurableRegister,
    ReplicaNode,
    ReplicatedRegisterClient,
    Simulator,
)


def live_growth() -> None:
    old = HierarchicalTriangle(3, subgrid="flat")
    new = old.grown("t2")
    print("— live growth (§5) —")
    print(f"old epoch: n={old.n}, F_0.1 = {old.failure_probability(0.1):.6f}")
    print(f"new epoch: n={new.n}, F_0.1 = {new.failure_probability(0.1):.6f}")

    sim = Simulator(seed=3)
    net = Network(sim)
    for element in range(new.n):
        ReplicaNode(element, net)
    client = ReplicatedRegisterClient(99, net)
    register = ReconfigurableRegister(client, old)

    log = []
    register.write(lambda v: {"balance": 100}, log.append)
    sim.run()
    print(f"wrote through the old epoch: ok={log[-1].ok}")

    register.reconfigure(new, lambda ok: log.append(ok))
    sim.run()
    print(f"migrated to the grown triangle: ok={log[-1]}, epoch={register.epoch}")

    register.read(log.append)
    sim.run()
    print(f"read through the new epoch: {log[-1].value} (version {log[-1].version})")


def byzantine_outlook() -> None:
    print("\n— Byzantine outlook (§7) —")
    triangle = HierarchicalTriangle(3)
    overlap, dissemination, masking = byzantine_profile(triangle)
    print(
        f"h-triang(6): min quorum overlap {overlap} ->"
        f" tolerates b={masking} Byzantine replicas"
    )
    boosted = boost(triangle, 1)
    baseline = masking_majority(boosted.n, 1)
    print(
        f"boosted to 2b+1 replica groups: n={boosted.n},"
        f" masking b={byzantine_profile(boosted)[2]},"
        f" quorums of {boosted.smallest_quorum_size()}"
    )
    print(
        f"masking majority on {baseline.n} elements needs quorums of"
        f" {baseline.smallest_quorum_size()} — the hierarchical route"
        " keeps quorums smaller, as the paper anticipated"
    )


def main() -> None:
    live_growth()
    byzantine_outlook()


if __name__ == "__main__":
    main()
