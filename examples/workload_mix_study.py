"""Workload-mix study: why the h-grid protocol has three quorum families.

The h-grid protocol (§4.1) distinguishes reads (row-covers), blind
writes (full-lines) and exclusive read-writes precisely so that the
cheap operations use small quorums.  This study runs a replicated
register under different read/write mixes twice:

* *specialised*: reads -> covers, blind writes -> lines,
  read-modify-writes -> read-write quorums;
* *monolithic*: every operation uses read-write quorums (what a naive
  single-family deployment would do).

and compares message cost and per-replica load.  The read-heavier the
mix, the more the specialised protocol wins.

Run with::

    python examples/workload_mix_study.py
"""

import numpy as np

from repro import HierarchicalGrid
from repro.sim import (
    LoadMeter,
    Network,
    ReplicaNode,
    ReplicatedRegisterClient,
    Simulator,
)

OPERATIONS = 1_500


def run_mix(grid, read_fraction: float, specialised: bool, seed: int = 0):
    sim = Simulator(seed=seed)
    net = Network(sim)
    for element in grid.universe.ids:
        ReplicaNode(element, net)
    client = ReplicatedRegisterClient(999, net)
    covers = grid.row_covers()
    lines = grid.full_lines()
    rw = list(grid.minimal_quorums())
    meter = LoadMeter(grid.n)
    rng = np.random.default_rng(seed)
    outcomes = []

    def issue(step: int) -> None:
        is_read = rng.random() < read_fraction

        def done(result):
            outcomes.append(result.ok)

        if is_read:
            pool = covers if specialised else rw
            quorum = pool[int(rng.integers(len(pool)))]
            meter.record_quorum(quorum)
            client.read([quorum], on_done=done)
        else:
            pool = lines if specialised else rw
            quorum = pool[int(rng.integers(len(pool)))]
            meter.record_quorum(quorum)
            if specialised:
                client.blind_write([quorum], step, on_done=done)
            else:
                client.read_write([quorum], lambda v, s=step: s, on_done=done)

    for step in range(OPERATIONS):
        sim.schedule(step * 10.0, issue, step)
    sim.run(until=OPERATIONS * 10.0 + 100.0)
    return {
        "messages": net.messages_sent,
        "max_load": meter.max_load,
        "mean_quorum": meter.counts.sum() / OPERATIONS,
        "success": sum(outcomes) / len(outcomes),
    }


def main() -> None:
    grid = HierarchicalGrid.halving(4, 4)
    print(f"register over {grid.system_name}, {OPERATIONS} ops per run\n")
    header = (
        f"{'mix':<16} {'variant':<12} {'msgs':>8} {'avg |Q|':>8}"
        f" {'max load':>9} {'ok':>6}"
    )
    print(header)
    print("-" * len(header))
    for read_fraction in (0.9, 0.5, 0.1):
        for specialised in (True, False):
            stats = run_mix(grid, read_fraction, specialised)
            label = f"{int(read_fraction * 100)}% reads"
            variant = "specialised" if specialised else "monolithic"
            print(
                f"{label:<16} {variant:<12} {stats['messages']:>8}"
                f" {stats['mean_quorum']:>8.2f} {stats['max_load']:>9.3f}"
                f" {stats['success']:>6.2f}"
            )
        print()
    print(
        "Reading the table: the specialised families contact 4 replicas"
        " per operation (covers and lines are both size sqrt(n)) versus 7"
        " for read-write quorums — the §4.1 design point.  Monolithic"
        " writes also cost a second round trip (version query), which is"
        " why its message count grows with the write share.  When"
        " read-modify-write semantics are genuinely needed, §4.2's"
        " h-T-grid shrinks those quorums from 7 to 4..7."
    )


if __name__ == "__main__":
    main()
