"""The full tour: every major capability in one script.

Walks through the paper's results (tables regenerated programmatically),
the analysis toolkit (duality, envelopes, importance, rare events) and a
closing simulation, printing a compact narrative.  Expect ~1 minute.

Run with::

    python examples/full_tour.py
"""

import numpy as np

from repro import HierarchicalTGrid, HierarchicalTriangle, MajorityQuorumSystem
from repro.analysis import (
    availability_gap,
    failure_probability_rare,
    find_crossover,
    importance_profile,
    optimal_failure_probability,
)
from repro.analysis.exact import exact_failure_htriangle
from repro.sim import measure_availability, measure_strategy_load
from repro.systems import SingletonQuorumSystem
from repro.tables import render_failure_table, table2
from repro.viz import render_failure_curves, render_figure2


def main() -> None:
    print("=" * 70)
    print("1. The paper's Table 2, regenerated")
    print("=" * 70)
    print(render_failure_table(table2(), "Table 2 — failure probability, ~15 nodes"))

    print()
    print("=" * 70)
    print("2. The paper's figure 2 and the §5 construction")
    print("=" * 70)
    print(render_figure2())
    triangle = HierarchicalTriangle(5)
    print(f"\nquorums: {triangle.num_minimal_quorums}, all of size"
          f" {triangle.smallest_quorum_size()}; load {triangle.load():.3f};"
          f" self-dual: {triangle.is_self_dual()}")

    print()
    print("=" * 70)
    print("3. Exact rational certification")
    print("=" * 70)
    exact = exact_failure_htriangle(triangle, "1/10")
    print(f"F_1/10(h-triang(15)) = {exact} = {float(exact):.12f}")
    print("rounded to the paper's six decimals: "
          f"{float(exact):.6f} (paper prints 0.000677)")

    print()
    print("=" * 70)
    print("4. Optimality map and crossovers (Prop. 3.2)")
    print("=" * 70)
    majority = MajorityQuorumSystem.of_size(15)
    print(f"optimal envelope at p=0.1, n=15 : {optimal_failure_probability(15, 0.1):.6f}")
    print(f"h-triang pays a gap of           : {availability_gap(triangle, 0.1):.6f}")
    print(f"... for load {triangle.load():.3f} instead of {majority.load():.3f}")
    crossing = find_crossover(SingletonQuorumSystem.of_size(15), majority,
                              low=0.05, high=0.95)
    print(f"singleton overtakes majority at  : p = {crossing:.4f}")

    print()
    print("=" * 70)
    print("5. Criticality (heterogeneous availability)")
    print("=" * 70)
    profile = importance_profile(triangle, 0.15)
    print(f"Birnbaum importance range: {profile.min():.4f} .. {profile.max():.4f}")
    print("(uniform load, non-uniform criticality — a §5 subtlety)")

    print()
    print("=" * 70)
    print("6. Rare events: the deep tail, sampled")
    print("=" * 70)
    estimate = failure_probability_rare(triangle, 0.02, samples=100_000, seed=0)
    exact_tail = triangle.failure_probability(0.02)
    print(f"F_0.02 exact     : {exact_tail:.3e}")
    print(f"F_0.02 estimated : {estimate.value:.3e} (+-{estimate.standard_error:.1e},"
          f" hit rate {estimate.hit_rate:.1%} under biased sampling)")

    print()
    print("=" * 70)
    print("7. Simulation closes the loop")
    print("=" * 70)
    probe = measure_availability(triangle, p=0.25, epochs=20_000, seed=7)
    print(f"simulated failure rate at p=0.25 : {probe.failure_rate:.4f}")
    print(f"analytic F_p                     : {triangle.failure_probability(0.25):.4f}")
    meter = measure_strategy_load(triangle.balanced_strategy(), operations=20_000)
    print(f"simulated max element load       : {meter.max_load:.3f}"
          f" (analytic {triangle.load():.3f})")

    print()
    print("=" * 70)
    print("8. The §4 contribution, visually")
    print("=" * 70)
    print(render_failure_curves(
        [HierarchicalTGrid.halving(4, 4), triangle], p_max=0.5, points=28
    ))


if __name__ == "__main__":
    main()
