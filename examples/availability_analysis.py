"""Availability analysis across constructions (the paper's §6 study).

Sweeps the per-process crash probability and prints the failure
probability of each studied system at ~15 nodes, locating the crossover
points the paper discusses (e.g. where the h-T-grid overtakes the flat
grid, and how close h-triang gets to the much-larger-quorum majority).

Run with::

    python examples/availability_analysis.py
"""

from repro import (
    CrumblingWallQuorumSystem,
    GridQuorumSystem,
    HQSQuorumSystem,
    HierarchicalTGrid,
    HierarchicalTriangle,
    MajorityQuorumSystem,
    YQuorumSystem,
)


def main() -> None:
    systems = [
        MajorityQuorumSystem.of_size(15),
        HQSQuorumSystem.balanced([5, 3]),
        CrumblingWallQuorumSystem.cwlog(14),
        GridQuorumSystem(4, 4),
        HierarchicalTGrid.halving(4, 4),
        YQuorumSystem.of_size(15),
        HierarchicalTriangle.of_size(15),
    ]

    probabilities = [i / 20 for i in range(1, 11)]
    header = "p      " + "".join(f"{s.system_name:>14}" for s in systems)
    print(header)
    print("-" * len(header))
    for p in probabilities:
        row = f"{p:<7.2f}"
        for system in systems:
            row += f"{system.failure_probability(p):>14.6f}"
        print(row)

    # Crossover: the h-T-grid beats the flat grid everywhere, and the
    # margin grows with p.
    grid = GridQuorumSystem(4, 4)
    htgrid = HierarchicalTGrid.halving(4, 4)
    print("\nh-T-grid vs flat grid (same 16 elements):")
    for p in (0.05, 0.1, 0.2, 0.3):
        g = grid.failure_probability(p)
        h = htgrid.failure_probability(p)
        print(f"  p={p:<5} grid={g:.6f}  h-T-grid={h:.6f}  ratio={g / h:6.2f}x")

    # The paper's quorum-size-for-availability trade-off: h-triang gets
    # within ~20x of majority's failure probability at p=0.1 while using
    # quorums of 5 instead of 8.
    triangle = HierarchicalTriangle.of_size(15)
    majority = MajorityQuorumSystem.of_size(15)
    ratio = triangle.failure_probability(0.1) / majority.failure_probability(0.1)
    print(
        f"\nh-triang(15) vs majority(15) at p=0.1: {ratio:.1f}x the failure"
        f" probability with quorums of {triangle.smallest_quorum_size()}"
        f" instead of {majority.quorum_size}"
    )


if __name__ == "__main__":
    main()
