"""Mutual exclusion on h-triang: load balancing with the §5 strategy.

The paper's load analysis (Def. 3.4, §5) predicts that the hierarchical
triangle spreads coordination work perfectly evenly — every element
handles ``t/n`` of the requests — while a naive client that always uses
the same quorum hammers ``t`` elements with 100% of the work.

This example runs the actual mutual-exclusion protocol over the
simulator under both strategies and prints the per-node grant counts.

Run with::

    python examples/mutex_load_balancing.py
"""

import numpy as np

from repro import HierarchicalTriangle
from repro.sim import MutexMonitor, MutexNode, Network, Simulator

REQUESTS = 3_000


def run(strategy_name: str, sample_quorum) -> np.ndarray:
    system = HierarchicalTriangle(5)
    sim = Simulator(seed=5)
    net = Network(sim)
    nodes = [MutexNode(i, net) for i in range(system.n)]
    monitor = MutexMonitor()
    requester = nodes[0]

    def cycle(remaining: int) -> None:
        if remaining == 0:
            return
        quorum = sample_quorum(sim)

        def acquired():
            monitor.enter(requester.node_id)
            monitor.leave(requester.node_id)
            requester.release_cs()
            sim.schedule(1.0, cycle, remaining - 1)

        requester.request_cs(quorum, acquired)

    cycle(REQUESTS)
    sim.run()
    assert monitor.violations == 0
    grants = np.array([node.grants_issued for node in nodes], dtype=float)
    print(f"{strategy_name}:")
    print(f"  critical sections entered : {monitor.entries}")
    print(f"  busiest node handled      : {grants.max() / REQUESTS:.3f} of requests")
    print(f"  idle nodes                : {(grants == 0).sum()} of {system.n}")
    return grants


def main() -> None:
    system = HierarchicalTriangle(5)
    balanced_strategy = system.balanced_strategy()  # the §5 strategy
    fixed_quorum = system.minimal_quorums()[0]

    print(f"system: {system.system_name}, {REQUESTS} lock requests from one client\n")

    naive = run("naive (always the same quorum)", lambda sim: fixed_quorum)
    print()
    balanced = run(
        "the §5 balanced strategy", lambda sim: balanced_strategy.sample(sim.rng)
    )

    print("\nanalytic prediction (Def. 3.4):")
    print(f"  naive strategy load    : 1.000 on {len(fixed_quorum)} elements")
    print(f"  balanced strategy load : {system.load():.3f} (= t/n, optimal by Prop. 3.3)")
    print("\nper-node grant shares under the balanced strategy:")
    shares = balanced / REQUESTS
    for row in range(5):
        start = row * (row + 1) // 2
        cells = " ".join(f"{shares[start + c]:.3f}" for c in range(row + 1))
        print("  " + " " * (5 - row - 1) * 3 + cells)


if __name__ == "__main__":
    main()
