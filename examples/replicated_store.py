"""A replicated register served by h-grid quorums under crash injection.

This is the scenario the hierarchical grid protocol was proposed for
(§4.1 of the paper): 16 replicas managed with read quorums (row-covers),
blind-write quorums (full-lines) and exclusive read-write quorums, here
running over the discrete-event simulator with iid transient crashes.

The example measures operation success rates and compares them with the
analytic availability of each quorum family — the paper's failure
probabilities made operational.

Run with::

    python examples/replicated_store.py
"""

import numpy as np

from repro import HierarchicalGrid
from repro.runtime import iid_crash_schedule
from repro.sim import (
    LatencyStats,
    Network,
    ReplicaNode,
    ReplicatedRegisterClient,
    ScheduleInjector,
    Simulator,
    UniformLatency,
)

CRASH_P = 0.2
OPERATIONS = 2_000


def main() -> None:
    grid = HierarchicalGrid.halving(4, 4)
    covers = grid.row_covers()
    lines = grid.full_lines()
    rw_quorums = list(grid.minimal_quorums())

    sim = Simulator(seed=2001)
    net = Network(sim, latency=UniformLatency(0.5, 1.5))
    for element in grid.universe.ids:
        ReplicaNode(element, net)
    client = ReplicatedRegisterClient(999, net, timeout=8.0)

    # The paper's iid crash model as a declarative runtime schedule —
    # the same FaultSchedule object could drive the asyncio service.
    horizon = OPERATIONS * 25.0 + 100.0
    schedule = iid_crash_schedule(
        sim.rng, net.node_ids, CRASH_P, horizon=horizon, epoch=50.0
    )
    injector = ScheduleInjector(net, schedule, horizon=horizon)
    injector.start()

    rng = np.random.default_rng(7)
    outcomes = {"read": [], "blind_write": [], "read_write": []}
    latency = LatencyStats()

    def issue(step: int) -> None:
        kind = ("read", "blind_write", "read_write")[step % 3]

        def done(result):
            outcomes[kind].append(result.ok)
            if result.ok:
                latency.record(result.latency)

        # Sample a primary quorum plus two fallbacks per operation.
        if kind == "read":
            pool = covers
        elif kind == "blind_write":
            pool = lines
        else:
            pool = rw_quorums
        picks = [pool[int(rng.integers(len(pool)))] for _ in range(3)]
        if kind == "read":
            client.read(picks, on_done=done)
        elif kind == "blind_write":
            client.blind_write(picks, f"value-{step}", on_done=done)
        else:
            client.read_write(picks, lambda v: (v or 0), on_done=done)

    for step in range(OPERATIONS):
        sim.schedule(step * 25.0 + 3.0, issue, step)
    sim.run(until=horizon)

    print(f"simulated {OPERATIONS} operations over {grid.system_name}")
    print(f"virtual time: {sim.now:.0f}, messages: {net.messages_sent}")
    print(f"crash probability per epoch: {CRASH_P}\n")

    analytic = {
        "read": grid.read_failure_probability(CRASH_P),
        "blind_write": grid.write_failure_probability(CRASH_P),
        "read_write": grid.failure_probability(CRASH_P),
    }

    def three_try_success(pool):
        # A sampled quorum is fully alive with probability q^|Q|; the
        # client tries three independent samples.
        q = 1.0 - CRASH_P
        per_try = sum(q ** len(quorum) for quorum in pool) / len(pool)
        return 1.0 - (1.0 - per_try) ** 3

    predicted = {
        "read": three_try_success(covers),
        "blind_write": three_try_success(lines),
        "read_write": three_try_success(rw_quorums),
    }
    print(
        f"{'operation':<12} {'success rate':>14} {'3-try prediction':>18}"
        f" {'oracle availability':>20}"
    )
    for kind, results in outcomes.items():
        rate = sum(results) / len(results)
        print(
            f"{kind:<12} {rate:>14.3f} {predicted[kind]:>18.3f}"
            f" {1 - analytic[kind]:>20.3f}"
        )
    print(
        "\n(the 3-try prediction models a client sampling three random"
        " quorums; the oracle column is the paper's availability, which"
        " assumes a clairvoyant quorum choice — the gap between the two"
        " is the price of not knowing which replicas are up, and crashes"
        " striking mid-operation cost a little more)"
    )
    print(f"\nsuccessful-operation latency: mean {latency.mean:.2f},"
          f" p95 {latency.percentile(95):.2f} time units")


if __name__ == "__main__":
    main()
