"""Serve the paper's load result: majority vs hierarchical triangle.

Runs the asyncio quorum-replicated key-value service (repro.service) on
the in-process transport for ``majority:15`` and ``h-triang:15`` and
compares the *observed* per-element load — the fraction of quorum
accesses each replica served — with the LP-optimal prediction from
:mod:`repro.analysis.load` (Definition 3.4).

The punchline is Table 4 of the paper, live: under majority the busiest
replica serves more than half the traffic, under the hierarchical
triangle only a third — with the same universe of 15 replicas.

Run with:  PYTHONPATH=src python examples/kv_service_demo.py
"""

from repro.analysis.load import optimal_strategy
from repro.service import run_kv_benchmark
from repro.systems import HierarchicalTriangle, MajorityQuorumSystem

OPS = 2000
SEED = 0


def describe(report):
    observed = report.observed_loads
    predicted = report.predicted_loads
    deviation = report.load_deviation()
    print(f"{report.system_name} (n={report.n})")
    print(f"  LP-optimal load L(S)      : {report.lp_load:.4f}")
    print(f"  observed busiest element  : {observed.max():.4f}")
    print(f"  mean |observed-predicted| : {deviation['mean_abs_error']:.4f}")
    print(f"  max relative deviation    : {deviation['max_relative_error']:.2%}")
    print(f"  success rate              : {report.metrics.success_rate:.2%}")
    print(f"  p99 latency (virtual ms)  : {report.metrics.latency_percentile(99):.2f}")
    width = 40
    for element in range(report.n):
        bar = "#" * max(1, round(observed[element] * width))
        print(f"    {str(report.element_names[element]):>8} {bar:<{width}}"
              f" {observed[element]:.3f} (pred {predicted[element]:.3f})")
    print()


def main():
    for system in (MajorityQuorumSystem.of_size(15), HierarchicalTriangle.of_size(15)):
        strategy = optimal_strategy(system)
        report = run_kv_benchmark(
            system, seed=SEED, strategy=strategy, ops=OPS, crash_rate=0.0
        )
        describe(report)

    crashy = run_kv_benchmark(
        HierarchicalTriangle.of_size(15), seed=SEED, ops=OPS, crash_rate=0.1
    )
    metrics = crashy.metrics
    print("h-triang:15 under iid crashes (p=0.1, resampled epochs)")
    print(f"  success rate   : {metrics.success_rate:.2%}")
    print(f"  fallbacks      : {metrics.fallbacks}")
    print(f"  read repairs   : {metrics.read_repairs}")
    print(f"  p99 latency    : {metrics.latency_percentile(99):.2f} virtual ms")


if __name__ == "__main__":
    main()
