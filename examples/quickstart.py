"""Quickstart: build the paper's quorum systems and query their metrics.

Run with::

    python examples/quickstart.py
"""

from repro import (
    HierarchicalTGrid,
    HierarchicalTriangle,
    MajorityQuorumSystem,
)


def main() -> None:
    # The paper's §5 contribution: 15 processes in a 5-row triangle.
    triangle = HierarchicalTriangle(5)
    print(f"system: {triangle.system_name}  (n = {triangle.n})")
    print(f"number of minimal quorums : {triangle.num_minimal_quorums}")
    print(f"quorum size (uniform!)    : {triangle.smallest_quorum_size()}")

    # A few example quorums, in (row, col) coordinates.
    print("three quorums:")
    for quorum in triangle.named_quorums()[:3]:
        print("   ", sorted(quorum))

    # The metrics the paper evaluates (Definitions 3.2 and 3.4).
    for p in (0.1, 0.2, 0.3, 0.5):
        print(f"failure probability at p={p}: {triangle.failure_probability(p):.6f}")
    print(f"system load               : {triangle.load():.4f}  (= t/n = sqrt(2)/sqrt(n))")

    # Balanced strategy of §5: perfectly uniform element loads.
    profile = triangle.balanced_load_profile()
    print(f"load imbalance under the §5 strategy: {profile.imbalance:.4f} (1.0 = perfect)")

    # Contrast with the majority baseline: better availability, but
    # quorums of 8 and load > 1/2.
    majority = MajorityQuorumSystem.of_size(15)
    print(
        f"\nmajority(15): quorum size {majority.quorum_size}, "
        f"load {majority.load():.3f}, "
        f"F_0.1 = {majority.failure_probability(0.1):.6f}"
    )

    # ... and with the paper's other contribution, the h-T-grid (§4).
    htgrid = HierarchicalTGrid.halving(4, 4)
    print(
        f"h-T-grid(4x4): quorum sizes {htgrid.smallest_quorum_size()}"
        f"..{htgrid.largest_quorum_size()}, "
        f"F_0.1 = {htgrid.failure_probability(0.1):.6f}"
    )


if __name__ == "__main__":
    main()
