"""Placement analysis: criticality and latency-aware quorum selection.

Two operational questions a deployment of these quorum systems faces:

1. *Which replica deserves the most reliable machine?*  Birnbaum
   importance (dA/dq_i) answers it exactly through the heterogeneous
   availability recursions — and reveals a subtlety of the hierarchical
   triangle: its load is perfectly uniform, but its elements are *not*
   equally critical (the top sub-triangle matters most).

2. *Which quorum should a client in one region use?*  With per-replica
   round-trip times, the latency/load LP traces the frontier between
   "always the nearest quorum" (fast, hot-spots the near replicas) and
   the load-optimal strategy (balanced, slower).

Run with::

    python examples/placement_analysis.py
"""

import numpy as np

from repro import HierarchicalTriangle
from repro.analysis import (
    importance_profile,
    improvement_potential,
    latency_load_frontier,
    latency_optimal_strategy,
    latency_profile,
    most_critical_elements,
)

P = 0.15


def criticality() -> None:
    system = HierarchicalTriangle(5)
    profile = importance_profile(system, P)
    print(f"— criticality of {system.system_name} at p={P} —")
    print("Birnbaum importance by triangle position:")
    index = 0
    for row in range(5):
        cells = " ".join(f"{profile[index + c]:.4f}" for c in range(row + 1))
        print("  " + " " * (5 - row - 1) * 4 + cells)
        index += row + 1
    top = most_critical_elements(system, P, count=3)
    names = [system.universe.name_of(e) for e, _ in top]
    print(f"most critical elements: {names}")
    gain = improvement_potential(system, P, top[0][0])
    print(f"hardening the most critical one buys ΔA = {gain:.6f}")
    loads = system.balanced_load_profile().element_loads
    print(f"(while the load profile stays perfectly flat: {loads[0]:.4f} everywhere)\n")


def latency() -> None:
    system = HierarchicalTriangle(5)
    rng = np.random.default_rng(1)
    # A client near the "top" of the triangle: nearby replicas ~1ms,
    # far ones up to ~9ms.
    rtt = [1.0 + 0.55 * i + rng.uniform(0, 0.3) for i in range(system.n)]
    print(f"— latency-aware selection on {system.system_name} —")
    best = latency_profile(system, rtt).min()
    fast = latency_optimal_strategy(system, rtt)
    balanced = latency_optimal_strategy(system, rtt, max_load=system.load() + 1e-9)
    print(f"fastest quorum completes in      : {best:.2f} ms")
    print(
        f"nearest-quorum strategy          : {best:.2f} ms,"
        f" but load {fast.induced_load():.2f} on the near replicas"
    )
    exp_lat = float(latency_profile(system, rtt) @ balanced.weights)
    print(
        f"load-optimal strategy            : {exp_lat:.2f} ms expected,"
        f" load {balanced.induced_load():.2f} (= t/n)"
    )
    print("latency/load frontier:")
    for budget, expected in latency_load_frontier(system, rtt, points=6):
        print(f"  load budget {budget:.3f} -> expected latency {expected:.2f} ms")


def main() -> None:
    criticality()
    latency()


if __name__ == "__main__":
    main()
