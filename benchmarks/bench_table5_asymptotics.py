"""Table 5 — asymptotic properties of the constructions.

The analytic table: smallest quorum size ``c(S)``, whether quorums have a
single size, and the load formula.  The benchmark prints the formulas,
evaluates them at n = 15/28/100, and confronts them with the *measured*
values on the finite instances this library builds — closing the loop
between Table 5 and Tables 2-4.
"""

import math

import pytest

from repro.analysis import TABLE5, predicted_load_interval
from repro.systems import (
    CrumblingWallQuorumSystem,
    HQSQuorumSystem,
    HierarchicalTGrid,
    HierarchicalTriangle,
    MajorityQuorumSystem,
    YQuorumSystem,
)

from _tables import format_table, run_once

ROWS = ("majority", "hqs", "cwlog", "h-t-grid", "paths", "y", "h-triang")


def compute_table5():
    measured = {
        "majority": (MajorityQuorumSystem.of_size(15), 15),
        "hqs": (HQSQuorumSystem.balanced([5, 3]), 15),
        "cwlog": (CrumblingWallQuorumSystem.cwlog(14), 14),
        "h-t-grid": (HierarchicalTGrid.halving(4, 4), 16),
        "y": (YQuorumSystem(5), 15),
        "h-triang": (HierarchicalTriangle(5), 15),
    }
    out = {}
    for name in ROWS:
        profile = TABLE5[name]
        entry = {
            "formula_c": profile.smallest_quorum_formula,
            "uniform": profile.uniform_quorum_size,
            "formula_load": profile.load_formula,
        }
        if name in measured:
            system, n = measured[name]
            entry["measured_c"] = system.smallest_quorum_size()
            entry["predicted_c"] = profile.smallest_quorum(n)
            entry["measured_uniform"] = system.has_uniform_quorum_size()
        out[name] = entry
    return out


@pytest.mark.benchmark(group="table5")
def test_table5(benchmark):
    table = run_once(benchmark, compute_table5)

    rows = []
    for name in ROWS:
        entry = table[name]
        rows.append(
            [
                name,
                entry["formula_c"],
                "yes" if entry["uniform"] else "no",
                entry["formula_load"],
                entry.get("measured_c", "-"),
                f"{entry.get('predicted_c', float('nan')):.1f}"
                if "predicted_c" in entry
                else "-",
            ]
        )
    print()
    print(
        format_table(
            "Table 5: asymptotic properties (+ measured c(S) at ~15 nodes)",
            ["system", "c(S)", "same size", "load", "c@15", "pred c@15"],
            rows,
            widths=22,
        )
    )

    # Predicted c(S) within ~1.5 elements of the measured values.
    for name, entry in table.items():
        if "measured_c" in entry:
            assert abs(entry["measured_c"] - entry["predicted_c"]) < 1.6
            # The uniform-size flags agree with the finite instances.
            assert entry["uniform"] == entry["measured_uniform"]

    # The load ladder the paper's summary draws: fpp optimal, h-triang
    # sqrt(2)x off, h-grid 2x off, at every scale.
    for n in (15, 28, 100, 1000):
        fpp = 1 / math.sqrt(n)
        htriang = predicted_load_interval("h-triang", n)[0]
        hgrid = predicted_load_interval("h-grid", n)[0]
        assert htriang == pytest.approx(fpp * math.sqrt(2))
        assert hgrid == pytest.approx(fpp * 2)
        assert fpp < htriang < hgrid < 0.5 or n < 20
