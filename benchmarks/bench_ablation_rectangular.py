"""Ablation: rectangular vs square grids for the h-T-grid (§4.3).

The paper observes that the h-T-grid prefers *slightly rectangular*
grids (more lines than columns): 24 nodes as 6 lines x 4 columns beat
both the 8x3 arrangement and the square 5x5 with one node more, while
for the plain h-grid the rectangular advantage is far smaller.  A second
axis ablates the hierarchy decomposition itself (the paper's top-down
halving vs bottom-up 2x2 pairing).
"""

import pytest

from repro.systems import HierarchicalGrid, HierarchicalTGrid

from _tables import format_table, run_once

SHAPES = ((4, 6), (5, 5), (6, 4), (8, 3), (3, 8))
P = 0.1


def compute_ablation():
    out = {}
    for shape in SHAPES:
        hgrid = HierarchicalGrid.halving(*shape)
        htgrid = HierarchicalTGrid.halving(*shape)
        out[shape] = {
            "h-grid": hgrid.failure_probability_exact(P),
            "h-T-grid": htgrid.failure_probability(P, method="shannon"),
        }
    out["pairing-6x4"] = {
        "h-grid": HierarchicalGrid.pairing(6, 4).failure_probability_exact(P),
        "h-T-grid": HierarchicalTGrid.pairing(6, 4).failure_probability(
            P, method="shannon"
        ),
    }
    return out


@pytest.mark.benchmark(group="ablation")
def test_rectangular_ablation(benchmark):
    table = run_once(benchmark, compute_ablation)

    rows = []
    for key, values in table.items():
        label = f"{key[0]}x{key[1]}" if isinstance(key, tuple) else key
        rows.append([label, values["h-grid"], values["h-T-grid"],
                     values["h-grid"] / values["h-T-grid"]])
    print()
    print(
        format_table(
            f"Ablation: grid shape and decomposition (failure at p={P})",
            ["shape RxC", "h-grid", "h-T-grid", "ratio"],
            rows,
        )
    )

    # §4.3 claims, re-established:
    # 1. 6 lines x 4 columns beats the square 5x5 (one node more!) ...
    assert table[(6, 4)]["h-T-grid"] < table[(5, 5)]["h-T-grid"]
    # 2. ... and beats the extreme 8x3 arrangement.
    assert table[(6, 4)]["h-T-grid"] < table[(8, 3)]["h-T-grid"]
    # 3. More lines than columns is the right direction: transposes are
    #    worse for the h-T-grid.
    assert table[(6, 4)]["h-T-grid"] < table[(4, 6)]["h-T-grid"]
    assert table[(8, 3)]["h-T-grid"] < table[(3, 8)]["h-T-grid"]
    # 4. The improvement over the h-grid is far bigger on rectangles
    #    (>3x) than on squares (~1.1x).
    square_ratio = table[(5, 5)]["h-grid"] / table[(5, 5)]["h-T-grid"]
    rect_ratio = table[(6, 4)]["h-grid"] / table[(6, 4)]["h-T-grid"]
    assert rect_ratio > 3.0 > square_ratio
