"""§4.3 strategy study on the 4x4 h-T-grid.

The paper evaluates two quorum-selection strategies for the h-T-grid:

* the load-optimal *line-based* strategy (full-lines are complete global
  rows): average quorum size 5.8, load 36.5%;
* a *randomized* variant that uses all quorums by sometimes taking
  full-line fragments from lower rows: average 5.9, load 41% — worse, as
  predicted.

The benchmark reproduces both, plus the theoretical lower bounds the
paper quotes (5.5 elements / 34.375%) and the LP-optimal load over the
full quorum set.
"""

import pytest

from repro.analysis import optimal_strategy
from repro.systems import HierarchicalTGrid

from _tables import format_table, run_once


def compute_strategies():
    system = HierarchicalTGrid.halving(4, 4)
    line_based = system.line_based_strategy()
    # epsilon calibrated so the induced load reproduces the paper's 41%.
    randomized = system.randomized_line_strategy(epsilon=0.16)
    lp = optimal_strategy(system)
    return {
        "line-based": (line_based.average_quorum_size(), line_based.induced_load()),
        "randomized": (randomized.average_quorum_size(), randomized.induced_load()),
        "lp-optimal": (lp.average_quorum_size(), lp.induced_load()),
        "lower-bound": (5.5, 5.5 / 16),
    }


@pytest.mark.benchmark(group="section-4.3")
def test_sec43_strategies(benchmark):
    table = run_once(benchmark, compute_strategies)

    rows = [
        ["line-based", *table["line-based"], 5.8, 0.365],
        ["randomized", *table["randomized"], 5.9, 0.41],
        ["lp-optimal", *table["lp-optimal"], "-", "-"],
        ["lower-bound", *table["lower-bound"], 5.5, 0.34375],
    ]
    print()
    print(
        format_table(
            "Section 4.3: h-T-grid strategies on the 4x4 grid",
            ["strategy", "avg |Q|", "load", "paper |Q|", "paper load"],
            rows,
        )
    )

    avg_line, load_line = table["line-based"]
    avg_rand, load_rand = table["randomized"]
    # Paper values within rounding.
    assert avg_line == pytest.approx(5.8, abs=0.06)
    assert load_line == pytest.approx(0.365, abs=0.005)
    assert load_rand == pytest.approx(0.41, abs=0.01)
    assert avg_rand >= avg_line - 1e-9
    # Both respect the quoted lower bounds ...
    assert avg_line >= 5.5
    assert load_line >= 0.34375
    # ... and the LP over all quorums can only do better than the
    # line-based restriction.
    assert table["lp-optimal"][1] <= load_line + 1e-9
