"""Table 3 — failure probability of quorum systems with ~28 nodes.

Majority(28), HQS(27), CWlog(29), h-T-grid(25), Paths(25), Y(28) and
h-triang(28).  The Y(28) and h-triang(28) columns need the exact
lattice/structural engines (2^28 enumeration is out of reach) — which is
precisely what this library contributes over naive scripts.
"""

import pytest

from repro.systems import (
    CrumblingWallQuorumSystem,
    HQSQuorumSystem,
    HierarchicalTGrid,
    HierarchicalTriangle,
    MajorityQuorumSystem,
    PathsQuorumSystem,
    YQuorumSystem,
)

from _tables import P_GRID, format_table, run_once

PAPER = {
    0.1: {"majority": 0.000000, "hqs": 0.000016, "cwlog": 0.000205,
          "h-t-grid": 0.001621, "paths": 0.001201, "y": 0.000057,
          "h-triang": 0.000055},
    0.2: {"majority": 0.000229, "hqs": 0.002681, "cwlog": 0.006865,
          "h-t-grid": 0.036300, "paths": 0.025045, "y": 0.005012,
          "h-triang": 0.004851},
    0.3: {"majority": 0.014257, "hqs": 0.039626, "cwlog": 0.056988,
          "h-t-grid": 0.176290, "paths": 0.136541, "y": 0.052777,
          "h-triang": 0.051670},
    0.5: {"majority": 0.500000, "hqs": 0.500000, "cwlog": 0.500000,
          "h-t-grid": 0.708872, "paths": 0.678858, "y": 0.500000,
          "h-triang": 0.500000},
}

SYSTEMS = {
    # "Majority (28)" in the paper is the 27-element instance (its
    # values, quorum size 14 and ~51% load all match n=27 exactly).
    "majority": lambda: MajorityQuorumSystem.of_size(27),
    "hqs": lambda: HQSQuorumSystem.balanced([3, 3, 3]),
    "cwlog": lambda: CrumblingWallQuorumSystem.cwlog(29),
    "h-t-grid": lambda: HierarchicalTGrid.halving(5, 5),
    "paths": lambda: PathsQuorumSystem(3),
    "y": lambda: YQuorumSystem(7),
    "h-triang": lambda: HierarchicalTriangle(7),
}


def compute_table3():
    systems = {name: factory() for name, factory in SYSTEMS.items()}
    table = {}
    for p in P_GRID:
        row = {}
        for name, system in systems.items():
            if name == "h-t-grid":
                row[name] = system.failure_probability(p, method="shannon")
            else:
                row[name] = system.failure_probability(p)
        table[p] = row
    return table


@pytest.mark.benchmark(group="table3")
def test_table3(benchmark):
    table = run_once(benchmark, compute_table3)

    names = list(SYSTEMS)
    rows = []
    for p in P_GRID:
        rows.append([f"p={p}"] + [table[p][name] for name in names])
        rows.append(["  paper"] + [PAPER[p][name] for name in names])
    print()
    print(format_table("Table 3: failure probability, ~28 nodes", ["-"] + names, rows))

    # Exact agreement except the documented Paths substitution and the
    # h-T-grid 5x5 decomposition gap (< 1% relative, we are never worse).
    for p in P_GRID:
        for name in names:
            if name == "paths":
                continue
            if name == "h-t-grid":
                assert table[p][name] == pytest.approx(PAPER[p][name], rel=0.01)
                assert table[p][name] <= PAPER[p][name] + 5e-7
                continue
            assert table[p][name] == pytest.approx(PAPER[p][name], abs=1.5e-6)
    # Shape assertions as in Table 2.
    for p in (0.1, 0.2, 0.3):
        assert table[p]["h-triang"] < table[p]["y"]
        assert table[p]["h-triang"] < table[p]["h-t-grid"]
    # Larger systems beat their ~15-node counterparts (availability
    # grows with size below p = 1/2).
    small = HierarchicalTriangle(5)
    assert table[0.1]["h-triang"] < small.failure_probability(0.1)
