"""Shared helpers for the table-regeneration benchmarks.

Each ``bench_*.py`` regenerates one table or figure of the paper: it
computes every cell with the library, prints the table next to the
paper's published values, and asserts the qualitative shape (who wins,
by what rough factor).  Timing comes from pytest-benchmark.

Run them with::

    pytest benchmarks/ --benchmark-only -s
"""

from __future__ import annotations

from typing import Dict, List, Sequence

P_GRID = (0.1, 0.2, 0.3, 0.5)


def format_table(
    title: str,
    columns: Sequence[str],
    rows: Sequence[Sequence],
    widths: int = 14,
) -> str:
    """Fixed-width table with a title banner."""
    lines = [title, "=" * len(title)]
    header = "".join(f"{c:>{widths}}" for c in columns)
    lines.append(header)
    lines.append("-" * len(header))
    for row in rows:
        cells = []
        for value in row:
            if isinstance(value, float):
                cells.append(f"{value:>{widths}.6f}")
            else:
                cells.append(f"{str(value):>{widths}}")
        lines.append("".join(cells))
    return "\n".join(lines)


def paired_rows(
    measured: Dict[float, Dict[str, float]],
    published: Dict[float, Dict[str, float]],
    systems: Sequence[str],
) -> List[List]:
    """Interleave measured and published values per probability point."""
    rows: List[List] = []
    for p in sorted(measured):
        rows.append([f"p={p}"] + [measured[p][s] for s in systems])
        if p in published:
            rows.append(["  paper"] + [published[p].get(s, float("nan")) for s in systems])
    return rows


def run_once(benchmark, fn):
    """Benchmark a heavy computation with a single measured round."""
    return benchmark.pedantic(fn, rounds=1, iterations=1, warmup_rounds=0)
