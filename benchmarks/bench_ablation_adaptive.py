"""Ablation: failure-aware vs blind quorum selection (§4.3 remark).

"In real situations, the strategy to be used should be adapted taking
into consideration the elements that are failed."  This benchmark
quantifies the remark: under iid crashes, a blind client sampling k
quorums succeeds with probability well below the system availability,
while the failure-aware selector (perfect failure detector) achieves it
exactly.
"""

import numpy as np
import pytest

from repro.analysis import availability_with_selector
from repro.core import Strategy
from repro.systems import HierarchicalTriangle

from _tables import format_table, run_once

P = 0.25
TRIALS = 4000


def compute_adaptive():
    system = HierarchicalTriangle(5)
    strategy = system.balanced_strategy()
    rng = np.random.default_rng(42)
    rows = {}
    for attempts in (1, 2, 4):
        rows[f"blind x{attempts}"] = availability_with_selector(
            system, P, TRIALS, rng, strategy=strategy, blind_attempts=attempts
        )
    rows["failure-aware"] = availability_with_selector(
        system, P, TRIALS, rng, strategy=strategy
    )
    rows["analytic availability"] = 1.0 - system.failure_probability(P)
    return rows


@pytest.mark.benchmark(group="ablation")
def test_adaptive_ablation(benchmark):
    table = run_once(benchmark, compute_adaptive)

    print()
    print(
        format_table(
            f"Ablation: quorum selection under crashes (h-triang(15), p={P})",
            ["selector", "success rate"],
            [[name, value] for name, value in table.items()],
            widths=24,
        )
    )

    analytic = table["analytic availability"]
    # Blind sampling improves with attempts but stays below analytic.
    assert table["blind x1"] < table["blind x2"] < table["blind x4"]
    assert table["blind x4"] <= analytic + 0.02
    # The failure-aware selector achieves the analytic availability.
    assert table["failure-aware"] == pytest.approx(analytic, abs=0.02)
