"""Table 1 — failure probability of h-grid vs h-T-grid.

Regenerates all 32 cells (4 grid shapes x 4 crash probabilities x 2
systems) and checks the paper's claims: the h-T-grid always improves on
the h-grid, by ~7.5-10% on squares and by more than 3x on the
6-lines x 4-columns grid.
"""

import pytest

from repro.systems import HierarchicalGrid, HierarchicalTGrid

from _tables import P_GRID, format_table, run_once

SHAPES = ((3, 3), (4, 4), (5, 5), (6, 4))

PAPER_HGRID = {
    (3, 3): (0.016893, 0.109235, 0.286224, 0.716797),
    (4, 4): (0.005799, 0.069318, 0.243795, 0.746628),
    (5, 5): (0.001753, 0.039439, 0.191581, 0.751019),
    (6, 4): (0.001949, 0.034161, 0.167172, 0.725377),
}
PAPER_HTGRID = {
    (3, 3): (0.015213, 0.098585, 0.259783, 0.667969),
    (4, 4): (0.005361, 0.063866, 0.225066, 0.706604),
    (5, 5): (0.001621, 0.036300, 0.176290, 0.708871),
    (6, 4): (0.000611, 0.016690, 0.104402, 0.598435),
}


def compute_table1():
    table = {}
    for shape in SHAPES:
        hgrid = HierarchicalGrid.halving(*shape)
        htgrid = HierarchicalTGrid.halving(*shape)
        table[shape] = {
            "h-grid": [hgrid.failure_probability_exact(p) for p in P_GRID],
            "h-T-grid": [
                htgrid.failure_probability(p, method="shannon") for p in P_GRID
            ],
        }
    return table


@pytest.mark.benchmark(group="table1")
def test_table1(benchmark):
    table = run_once(benchmark, compute_table1)

    rows = []
    for shape in SHAPES:
        label = f"{shape[0]}x{shape[1]}"
        rows.append([f"{label} h-grid"] + table[shape]["h-grid"])
        rows.append(["  paper"] + list(PAPER_HGRID[shape]))
        rows.append([f"{label} h-T-grid"] + table[shape]["h-T-grid"])
        rows.append(["  paper"] + list(PAPER_HTGRID[shape]))
    print()
    print(
        format_table(
            "Table 1: failure probability, h-grid vs h-T-grid",
            ["config"] + [f"p={p}" for p in P_GRID],
            rows,
        )
    )

    # Shape assertions: h-T-grid improves everywhere ...
    for shape in SHAPES:
        for hg, ht in zip(table[shape]["h-grid"], table[shape]["h-T-grid"]):
            assert ht < hg
    # ... by 5-15% on squares at p=0.1 ...
    for shape in ((3, 3), (4, 4), (5, 5)):
        hg = table[shape]["h-grid"][0]
        ht = table[shape]["h-T-grid"][0]
        assert 0.05 < (hg - ht) / hg < 0.15
    # ... and by more than 3x on the rectangular grid, which even beats
    # the 25-node square.
    assert table[(6, 4)]["h-T-grid"][0] < table[(6, 4)]["h-grid"][0] / 3
    assert table[(6, 4)]["h-T-grid"][0] < table[(5, 5)]["h-grid"][0]
