"""Table 2 — failure probability of quorum systems with ~15 nodes.

Majority(15), HQS(15), CWlog(14), h-T-grid(16), Paths(13), Y(15) and
h-triang(15).  All columns except Paths reproduce the paper exactly;
Paths uses our documented diamond-lattice reconstruction (EXPERIMENTS.md)
and matches in shape only.
"""

import pytest

from repro.systems import (
    CrumblingWallQuorumSystem,
    HQSQuorumSystem,
    HierarchicalTGrid,
    HierarchicalTriangle,
    MajorityQuorumSystem,
    PathsQuorumSystem,
    YQuorumSystem,
)

from _tables import P_GRID, format_table, run_once

PAPER = {
    0.1: {"majority": 0.000034, "hqs": 0.000210, "cwlog": 0.001639,
          "h-t-grid": 0.015213, "paths": 0.007351, "y": 0.000745,
          "h-triang": 0.000677},
    0.2: {"majority": 0.004240, "hqs": 0.009567, "cwlog": 0.021787,
          "h-t-grid": 0.098585, "paths": 0.063493, "y": 0.017603,
          "h-triang": 0.016577},
    0.3: {"majority": 0.050013, "hqs": 0.070946, "cwlog": 0.099915,
          "h-t-grid": 0.259783, "paths": 0.206296, "y": 0.093599,
          "h-triang": 0.090712},
    0.5: {"majority": 0.500000, "hqs": 0.500000, "cwlog": 0.500000,
          "h-t-grid": 0.667969, "paths": 0.662598, "y": 0.500000,
          "h-triang": 0.500000},
}

SYSTEMS = {
    "majority": lambda: MajorityQuorumSystem.of_size(15),
    "hqs": lambda: HQSQuorumSystem.balanced([5, 3]),
    "cwlog": lambda: CrumblingWallQuorumSystem.cwlog(14),
    # The paper's Table 2 column is labelled "(16)" but prints the
    # 3x3 h-T-grid values of Table 1 (a labelling slip); we regenerate
    # the printed numbers with the 3x3 instance.
    "h-t-grid": lambda: HierarchicalTGrid.halving(3, 3),
    "paths": lambda: PathsQuorumSystem(2),
    "y": lambda: YQuorumSystem(5),
    "h-triang": lambda: HierarchicalTriangle(5),
}


def compute_table2():
    systems = {name: factory() for name, factory in SYSTEMS.items()}
    return {
        p: {name: system.failure_probability(p) for name, system in systems.items()}
        for p in P_GRID
    }


@pytest.mark.benchmark(group="table2")
def test_table2(benchmark):
    table = run_once(benchmark, compute_table2)

    names = list(SYSTEMS)
    rows = []
    for p in P_GRID:
        rows.append([f"p={p}"] + [table[p][name] for name in names])
        rows.append(["  paper"] + [PAPER[p][name] for name in names])
    print()
    print(format_table("Table 2: failure probability, ~15 nodes", ["-"] + names, rows))

    # Exact agreement for everything but Paths (documented substitution).
    for p in P_GRID:
        for name in names:
            if name == "paths":
                continue
            assert table[p][name] == pytest.approx(PAPER[p][name], abs=1.5e-6)
    # Shape: self-dual systems hit exactly 1/2 at p = 1/2 ...
    for name in ("majority", "hqs", "cwlog", "y", "h-triang"):
        assert table[0.5][name] == pytest.approx(0.5, abs=1e-9)
    # ... grid-shaped systems exceed it ...
    assert table[0.5]["h-t-grid"] > 0.5
    assert table[0.5]["paths"] > 0.5
    # ... and h-triang is the best of the O(sqrt n)-quorum systems.
    for p in (0.1, 0.2, 0.3):
        assert table[p]["h-triang"] < table[p]["y"]
        assert table[p]["h-triang"] < table[p]["h-t-grid"]
        assert table[p]["h-triang"] < table[p]["paths"]
