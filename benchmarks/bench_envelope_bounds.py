"""Optimality-envelope study (Propositions 3.2 and 3.3 made concrete).

Places every ~15-node system of Table 2 on the Peleg–Wool optimality
map: the failure-probability *gap* above the majority envelope (the
price paid for small quorums) against the *capacity* gained (1/load).
This is the trade-off the paper's §6 narrates; here it is a table.
"""

import pytest

from repro.analysis import (
    availability_gap,
    capacity,
    find_crossover,
    optimal_failure_probability,
)
from repro.systems import (
    CrumblingWallQuorumSystem,
    HQSQuorumSystem,
    HierarchicalTGrid,
    HierarchicalTriangle,
    MajorityQuorumSystem,
    SingletonQuorumSystem,
    YQuorumSystem,
)

from _tables import format_table, run_once

P = 0.1


def compute_envelope():
    systems = {
        "majority": MajorityQuorumSystem.of_size(15),
        "hqs": HQSQuorumSystem.balanced([5, 3]),
        "cwlog": CrumblingWallQuorumSystem.cwlog(14),
        "h-t-grid": HierarchicalTGrid.halving(4, 4),
        "y": YQuorumSystem(5),
        "h-triang": HierarchicalTriangle(5),
    }
    rows = {}
    for name, system in systems.items():
        rows[name] = {
            "gap": availability_gap(system, P),
            "capacity": capacity(system),
            "c(S)": system.smallest_quorum_size(),
        }
    singleton = SingletonQuorumSystem.of_size(15)
    majority = MajorityQuorumSystem.of_size(15)
    rows["_crossover"] = find_crossover(singleton, majority, low=0.05, high=0.95)
    return rows


@pytest.mark.benchmark(group="bounds")
def test_envelope_bounds(benchmark):
    table = run_once(benchmark, compute_envelope)

    crossover = table.pop("_crossover")
    print()
    print(
        format_table(
            f"Optimality map at ~15 nodes (p={P}, envelope ="
            f" {optimal_failure_probability(15, P):.6f})",
            ["system", "gap over optimum", "capacity (1/L)", "c(S)"],
            [
                [name, row["gap"], row["capacity"], row["c(S)"]]
                for name, row in table.items()
            ],
            widths=18,
        )
    )
    print(f"\nProp. 3.2 regime switch (singleton vs majority): p = {crossover:.6f}")

    # Majority sits on the envelope; everyone else pays a positive gap.
    assert table["majority"]["gap"] == pytest.approx(0.0, abs=1e-12)
    for name, row in table.items():
        assert row["gap"] >= -1e-12
    # ... and buys capacity for it: every O(sqrt n) system beats
    # majority's capacity.
    for name in ("h-t-grid", "y", "h-triang"):
        assert table[name]["capacity"] > table["majority"]["capacity"]
    # h-triang has the best capacity of the high-availability group and
    # the smallest gap of the O(sqrt n) group.
    assert table["h-triang"]["capacity"] == pytest.approx(3.0)
    assert table["h-triang"]["gap"] < table["y"]["gap"]
    assert table["h-triang"]["gap"] < table["h-t-grid"]["gap"]
    # The Prop. 3.2 regime switch is at p = 1/2.
    assert crossover == pytest.approx(0.5, abs=1e-6)
