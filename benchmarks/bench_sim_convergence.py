"""Simulation <-> analysis convergence.

The failure model of the paper (iid transient crashes) is injected into
the discrete-event simulator and two bridges are measured:

* availability: the fraction of crash epochs with no live quorum must
  converge to the analytic ``F_p`` (Def. 3.2);
* load: per-node request frequencies under the §5 balanced strategy must
  converge to the analytic element loads (Def. 3.4).
"""

import numpy as np
import pytest

from repro.sim import LoadMeter
from repro.sim import measure_availability as _measure_availability
from repro.systems import HierarchicalTriangle, MajorityQuorumSystem, YQuorumSystem

from _tables import format_table, run_once

EPOCHS = 40_000
P = 0.25


def measure_availability(system, seed=0):
    # The scenario helper applies the declarative iid crash schedule with
    # the same draws (and the same results) as the legacy injector here.
    return _measure_availability(system, P, epochs=EPOCHS, seed=seed)


def compute_convergence():
    systems = [
        MajorityQuorumSystem.of_size(9),
        HierarchicalTriangle(5),
        YQuorumSystem(4),
    ]
    availability = {}
    for system in systems:
        probe = measure_availability(system)
        availability[system.system_name] = (
            probe.failure_rate,
            system.failure_probability(P),
            probe.confidence_half_width(),
        )

    triangle = HierarchicalTriangle(5)
    strategy = triangle.balanced_strategy()
    meter = LoadMeter(triangle.n)
    rng = np.random.default_rng(1)
    for _ in range(50_000):
        meter.record_quorum(strategy.sample(rng))
    return availability, meter.max_load, triangle.load()


@pytest.mark.benchmark(group="sim")
def test_sim_convergence(benchmark):
    availability, measured_load, analytic_load = run_once(
        benchmark, compute_convergence
    )

    rows = [
        [name, measured, exact, half_width]
        for name, (measured, exact, half_width) in availability.items()
    ]
    rows.append(["h-triang5 load", measured_load, analytic_load, "-"])
    print()
    print(
        format_table(
            f"Simulated vs analytic (p={P}, {EPOCHS} epochs)",
            ["quantity", "simulated", "analytic", "99% hw"],
            rows,
            widths=16,
        )
    )

    for name, (measured, exact, half_width) in availability.items():
        assert abs(measured - exact) <= half_width + 0.01, name
    assert measured_load == pytest.approx(analytic_load, abs=0.01)
