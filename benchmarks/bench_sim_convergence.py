"""Simulation <-> analysis convergence.

The failure model of the paper (iid transient crashes) is injected into
the discrete-event simulator and two bridges are measured:

* availability: the fraction of crash epochs with no live quorum must
  converge to the analytic ``F_p`` (Def. 3.2);
* load: per-node request frequencies under the §5 balanced strategy must
  converge to the analytic element loads (Def. 3.4).
"""

import numpy as np
import pytest

from repro.sim import (
    AvailabilityProbe,
    IidCrashInjector,
    LoadMeter,
    Network,
    Node,
    Simulator,
)
from repro.systems import HierarchicalTriangle, MajorityQuorumSystem, YQuorumSystem

from _tables import format_table, run_once

EPOCHS = 40_000
P = 0.25


class _Sink(Node):
    def on_message(self, src, message):  # pragma: no cover - never used
        pass


def measure_availability(system, seed=0):
    sim = Simulator(seed=seed)
    net = Network(sim)
    for element in system.universe.ids:
        _Sink(element, net)
    probe = AvailabilityProbe(system, net)
    injector = IidCrashInjector(net, p=P, epoch=1.0, on_epoch=probe.observe)
    injector.start()
    sim.run(until=float(EPOCHS))
    return probe


def compute_convergence():
    systems = [
        MajorityQuorumSystem.of_size(9),
        HierarchicalTriangle(5),
        YQuorumSystem(4),
    ]
    availability = {}
    for system in systems:
        probe = measure_availability(system)
        availability[system.system_name] = (
            probe.failure_rate,
            system.failure_probability(P),
            probe.confidence_half_width(),
        )

    triangle = HierarchicalTriangle(5)
    strategy = triangle.balanced_strategy()
    meter = LoadMeter(triangle.n)
    rng = np.random.default_rng(1)
    for _ in range(50_000):
        meter.record_quorum(strategy.sample(rng))
    return availability, meter.max_load, triangle.load()


@pytest.mark.benchmark(group="sim")
def test_sim_convergence(benchmark):
    availability, measured_load, analytic_load = run_once(
        benchmark, compute_convergence
    )

    rows = [
        [name, measured, exact, half_width]
        for name, (measured, exact, half_width) in availability.items()
    ]
    rows.append(["h-triang5 load", measured_load, analytic_load, "-"])
    print()
    print(
        format_table(
            f"Simulated vs analytic (p={P}, {EPOCHS} epochs)",
            ["quantity", "simulated", "analytic", "99% hw"],
            rows,
            widths=16,
        )
    )

    for name, (measured, exact, half_width) in availability.items():
        assert abs(measured - exact) <= half_width + 0.01, name
    assert measured_load == pytest.approx(analytic_load, abs=0.01)
