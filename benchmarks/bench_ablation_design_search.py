"""Ablation: design-space search over construction shapes.

Generalises §4.3's rectangular-grid observation into a search: over all
factorisations of 24 elements, which h-T-grid shape is most available?
Over all 1575 wall shapes of 14 elements, how far is CWlog from the
availability optimum (it trades availability for O(lg n) quorums)?
"""

import pytest

from repro.analysis.optimization import best_grid_shape, best_wall
from repro.systems import CrumblingWallQuorumSystem

from _tables import format_table, run_once

P = 0.1


def compute_search():
    walls = best_wall(14, P, top=5)
    cwlog = CrumblingWallQuorumSystem.cwlog(14)
    cwlog_value = cwlog.failure_probability_exact(P)
    htgrid_shapes = best_grid_shape(24, P, system="h-t-grid", top=4)
    hgrid_shapes = best_grid_shape(24, P, system="h-grid", top=4)
    return walls, cwlog_value, htgrid_shapes, hgrid_shapes


@pytest.mark.benchmark(group="ablation")
def test_design_search(benchmark):
    walls, cwlog_value, htgrid_shapes, hgrid_shapes = run_once(
        benchmark, compute_search
    )

    print()
    print(
        format_table(
            f"Best wall shapes at n=14, p={P} (1575 candidates searched)",
            ["widths", "F_p"],
            [[str(list(widths)), value] for widths, value in walls]
            + [["cwlog [1,2,2,3,3,3]", cwlog_value]],
            widths=22,
        )
    )
    print()
    print(
        format_table(
            f"Best 24-element grid shapes at p={P}",
            ["family", "shape RxC", "F_p"],
            [["h-T-grid", f"{r}x{c}", v] for (r, c), v in htgrid_shapes]
            + [["h-grid", f"{r}x{c}", v] for (r, c), v in hgrid_shapes],
            widths=14,
        )
    )

    # The searched optimum beats CWlog's trade-off shape on availability.
    assert walls[0][1] < cwlog_value
    # The paper's 6-lines x 4-columns is the best h-T-grid factorisation
    # of 24 (its §4.3 claim, rediscovered by exhaustive search).
    assert htgrid_shapes[0][0] == (6, 4)
    # More lines than columns throughout the h-T-grid leaderboard.
    for (rows, cols), _ in htgrid_shapes[:2]:
        assert rows >= cols
    # The h-grid prefers portrait shapes too (full-lines are cheaper when
    # rows are short), and the search puts 6x4 on top for both families —
    # but the h-T-grid's margin over its own h-grid is what §4.3 is
    # about, and it only materialises on the portrait shape.
    assert hgrid_shapes[0][0] == (6, 4)
    htgrid_best = dict(htgrid_shapes)[(6, 4)]
    hgrid_best = dict(hgrid_shapes)[(6, 4)]
    assert hgrid_best / htgrid_best > 3.0
