"""Ablation: element hardening and latency/load trade-off.

Uses the heterogeneous availability recursions to quantify two
deployment levers on the paper's constructions:

* hardening one replica (making it perfectly reliable): best-placed vs
  worst-placed element, per system — symmetric systems don't care,
  walls and triangles do;
* the latency/load frontier of the hierarchical triangle for a client
  with region-skewed RTTs.
"""

import numpy as np
import pytest

from repro.analysis import (
    importance_profile,
    latency_load_frontier,
    latency_profile,
)
from repro.systems import (
    CrumblingWallQuorumSystem,
    HierarchicalTriangle,
    MajorityQuorumSystem,
)

from _tables import format_table, run_once

P = 0.15


def harden(system, element, p=P):
    survive = [1.0 - p] * system.n
    survive[element] = 1.0
    return system.availability_heterogeneous(survive)


def compute_placement():
    systems = {
        "majority(9)": MajorityQuorumSystem.of_size(9),
        "cwlog(14)": CrumblingWallQuorumSystem.cwlog(14),
        "h-triang(15)": HierarchicalTriangle(5),
    }
    rows = {}
    for name, system in systems.items():
        baseline = system.availability_heterogeneous([1.0 - P] * system.n)
        profile = importance_profile(system, P)
        best = int(np.argmax(profile))
        worst = int(np.argmin(profile))
        rows[name] = {
            "baseline": baseline,
            "best": harden(system, best) - baseline,
            "worst": harden(system, worst) - baseline,
            "spread": float(profile.max() / max(profile.min(), 1e-18)),
        }
    triangle = HierarchicalTriangle(5)
    rtt = [1.0 + 0.5 * i for i in range(triangle.n)]
    frontier = latency_load_frontier(triangle, rtt, points=5)
    return rows, frontier


@pytest.mark.benchmark(group="ablation")
def test_placement_ablation(benchmark):
    rows, frontier = run_once(benchmark, compute_placement)

    print()
    print(
        format_table(
            f"Ablation: hardening one replica (availability gain at p={P})",
            ["system", "baseline A", "best element", "worst element", "imp. spread"],
            [
                [name, row["baseline"], row["best"], row["worst"], row["spread"]]
                for name, row in rows.items()
            ],
            widths=16,
        )
    )
    print()
    print(
        format_table(
            "Latency/load frontier, h-triang(15), RTT = 1 + 0.5*id",
            ["load budget", "expected latency"],
            [[budget, latency] for budget, latency in frontier],
            widths=18,
        )
    )

    # Symmetric majority: placement is irrelevant.
    assert rows["majority(9)"]["best"] == pytest.approx(
        rows["majority(9)"]["worst"], abs=1e-12
    )
    assert rows["majority(9)"]["spread"] == pytest.approx(1.0, abs=1e-9)
    # Asymmetric systems: placement matters, best beats worst.
    for name in ("cwlog(14)", "h-triang(15)"):
        assert rows[name]["best"] > rows[name]["worst"]
        assert rows[name]["spread"] > 1.1
    # Frontier is monotone: looser load -> lower latency.
    latencies = [latency for _, latency in frontier]
    for before, after in zip(latencies, latencies[1:]):
        assert after <= before + 1e-9
