"""Ablation: the §5 growth operations of the hierarchical triangle.

"Introducing new elements": replacing a sub-triangle of m lines by m+1
lines, or widening the sub-grid, improves availability without
restructuring.  The benchmark measures every rule from the 5-row
triangle and compares growth against rebuilding the next standard
triangle, plus the flat-vs-hierarchical sub-grid organisation ablation.
"""

import pytest

from repro.systems import HierarchicalTriangle

from _tables import format_table, run_once

P = 0.1


def compute_growth():
    base = HierarchicalTriangle(5, subgrid="flat")
    out = {"base(t=5)": (base.n, base.failure_probability(P))}
    for where in ("t1", "t2", "grid"):
        grown = base.grown(where)
        out[f"grow {where}"] = (grown.n, grown.failure_probability(P))
    rebuilt = HierarchicalTriangle(6)
    out["standard t=6"] = (rebuilt.n, rebuilt.failure_probability(P))
    out["flat-subgrid t=7"] = (
        28,
        HierarchicalTriangle(7, subgrid="flat").failure_probability(P),
    )
    out["halving-subgrid t=7"] = (
        28,
        HierarchicalTriangle(7, subgrid="halving").failure_probability(P),
    )
    return out


@pytest.mark.benchmark(group="ablation")
def test_growth_ablation(benchmark):
    table = run_once(benchmark, compute_growth)

    rows = [[name, n, value] for name, (n, value) in table.items()]
    print()
    print(
        format_table(
            f"Ablation: §5 growth operations (failure at p={P})",
            ["variant", "n", "F_p"],
            rows,
        )
    )

    base_n, base_f = table["base(t=5)"]
    # Every growth rule strictly improves availability (§5's claim).
    for where in ("t1", "t2", "grid"):
        grown_n, grown_f = table[f"grow {where}"]
        assert grown_n > base_n
        assert grown_f < base_f
    # Growing t2 (the larger sub-triangle) helps more than growing t1.
    assert table["grow t2"][1] < table["grow t1"][1]
    # The hierarchical sub-grid beats the flat sub-grid at t=7
    # (this is what makes our h-triang(28) match the paper's Table 3).
    assert table["halving-subgrid t=7"][1] < table["flat-subgrid t=7"][1]
