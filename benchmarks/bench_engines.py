"""Ablation: availability-engine agreement and relative speed.

The library ships four independent failure-probability engines
(structural closed forms, exhaustive 2^n, Shannon expansion, Monte
Carlo).  This benchmark times each on the same h-T-grid instance and
asserts they agree — the machinery behind every number in Tables 1-3.
"""

import pytest

from repro.analysis import (
    failure_probability_exhaustive,
    failure_probability_montecarlo,
    failure_probability_shannon,
)
from repro.systems import HierarchicalTGrid, HierarchicalTriangle

P = 0.2


@pytest.fixture(scope="module")
def htgrid():
    system = HierarchicalTGrid.halving(4, 4)
    system.minimal_quorums()  # warm the construction cache
    return system


@pytest.mark.benchmark(group="engines")
def test_engine_exhaustive(benchmark, htgrid):
    value = benchmark(failure_probability_exhaustive, htgrid, P)
    assert value == pytest.approx(0.063866, abs=5e-7)


@pytest.mark.benchmark(group="engines")
def test_engine_shannon(benchmark, htgrid):
    value = benchmark(failure_probability_shannon, htgrid, P)
    assert value == pytest.approx(0.063866, abs=5e-7)


@pytest.mark.benchmark(group="engines")
def test_engine_montecarlo(benchmark, htgrid):
    estimate = benchmark(
        failure_probability_montecarlo, htgrid, P, samples=50_000, seed=1
    )
    assert estimate.contains(0.063866)


@pytest.mark.benchmark(group="engines")
def test_engine_structural_triangle(benchmark):
    system = HierarchicalTriangle(7)
    value = benchmark(system.failure_probability_exact, P)
    assert value == pytest.approx(0.004851, abs=5e-7)
