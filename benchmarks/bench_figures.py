"""Figures 1 and 2 — the construction illustrations, regenerated.

Figure 1: the 3-level hierarchical grid of 16 processes with a
read-write quorum (row-cover + full-line) marked.  Figure 2: the 5-row
triangle divided into sub-triangle 1, the sub-grid and sub-triangle 2.
Both renderings are deterministic and structurally asserted.
"""

import pytest

from repro.systems import HierarchicalGrid, HierarchicalTriangle
from repro.viz import render_figure1, render_figure2

from _tables import run_once


@pytest.mark.benchmark(group="figures")
def test_figure1(benchmark):
    text = run_once(benchmark, render_figure1)
    print()
    print(text)

    grid = HierarchicalGrid.halving(4, 4)
    body = [line for line in text.splitlines() if line and line[0] in ".CLB"]
    # 4x4 layout with a 4-element full-line and a 4-element row-cover.
    assert len(body) == 4
    marks = "".join(body)
    assert marks.count("L") + marks.count("B") == 4
    assert marks.count("C") + marks.count("B") == 4
    # The marked sets really are a line and a cover of the h-grid.
    assert len(grid.full_lines()) == 8
    assert len(grid.row_covers()) == 64


@pytest.mark.benchmark(group="figures")
def test_figure2(benchmark):
    text = run_once(benchmark, render_figure2)
    print()
    print(text)

    triangle = HierarchicalTriangle(5)
    body = "\n".join(text.splitlines()[2:])
    # Counts match figure 2's division: |T1| = 3, |G| = 6, |T2| = 6.
    assert body.count("1") == triangle._node_size(triangle._root.t1) == 3
    assert body.count("G") == triangle._node_size_grid(triangle._root.grid) == 6
    assert body.count("2") == triangle._node_size(triangle._root.t2) == 6
