"""Table 4 — minimum / maximum quorum sizes and load.

Reproduces the three scale blocks (~15, ~28, ~100 nodes).  Loads come
from exact structural formulas or the documented strategies:

* majority / HQS / h-triang — uniform symmetric strategies (exact);
* CWlog — the [16] size/load trade-off strategy (§6 quotes 55.5% / 43.7%);
* h-T-grid — the §4.3 line-based strategy (paper: 41% with the
  all-quorums variant, >= 36.5% with the optimal line strategy);
* Y — avg-quorum-size/n as the paper does (it cites [10]'s average).
"""

import pytest

from repro.analysis import optimal_strategy
from repro.systems import (
    CrumblingWallQuorumSystem,
    HQSQuorumSystem,
    HierarchicalTGrid,
    HierarchicalTriangle,
    MajorityQuorumSystem,
    PathsQuorumSystem,
    YQuorumSystem,
)

from _tables import format_table, run_once


def compute_block15():
    majority = MajorityQuorumSystem.of_size(15)
    hqs = HQSQuorumSystem.balanced([5, 3])
    cwlog = CrumblingWallQuorumSystem.cwlog(14)
    htgrid = HierarchicalTGrid.halving(4, 4)
    paths = PathsQuorumSystem(2)
    y = YQuorumSystem(5)
    triangle = HierarchicalTriangle(5)
    y_strategy = optimal_strategy(y)
    return {
        "majority": (8, 8, majority.load_exact()),
        "hqs": (6, 6, hqs.load_exact()),
        "cwlog": (
            cwlog.smallest_quorum_size(),
            cwlog.largest_quorum_size(),
            cwlog.tradeoff_strategy().induced_load(),
        ),
        "h-t-grid": (
            htgrid.smallest_quorum_size(),
            htgrid.largest_quorum_size(),
            htgrid.line_based_strategy().induced_load(),
        ),
        "paths": (paths.smallest_quorum_size(), None, optimal_strategy(paths).induced_load()),
        "y": (y.smallest_quorum_size(), y.largest_quorum_size(), y_strategy.induced_load()),
        "h-triang": (5, 5, triangle.load_exact()),
    }


def compute_block28():
    majority = MajorityQuorumSystem.of_size(27)  # the paper's "(28)"
    hqs = HQSQuorumSystem.balanced([3, 3, 3])
    cwlog = CrumblingWallQuorumSystem.cwlog(29)
    htgrid = HierarchicalTGrid.halving(5, 5)
    triangle = HierarchicalTriangle(7)
    y = YQuorumSystem(7)
    return {
        "majority": (14, 14, majority.load_exact()),
        "hqs": (8, 8, hqs.load_exact()),
        "cwlog": (
            cwlog.smallest_quorum_size(),
            cwlog.largest_quorum_size(),
            cwlog.tradeoff_strategy().induced_load(),
        ),
        "h-t-grid": (
            htgrid.smallest_quorum_size(),
            htgrid.largest_quorum_size(),
            # The paper quotes 34% (>= 29.7%); our LP over the line
            # strategy's support reproduces the same regime.
            htgrid.line_based_strategy().induced_load(),
        ),
        "paths": (PathsQuorumSystem(3).smallest_quorum_size(), None, None),
        "y": (y.smallest_quorum_size(), None, 8.1 / 28),  # [10]'s average
        "h-triang": (7, 7, triangle.load_exact()),
    }


def compute_block100():
    majority = MajorityQuorumSystem.of_size(101)
    cwlog = CrumblingWallQuorumSystem.cwlog(99)  # ends on an exact row
    htgrid = HierarchicalTGrid.halving(10, 10)
    triangle = HierarchicalTriangle(14)
    return {
        "majority": (51, 51, majority.load_exact()),
        "hqs": (None, None, None),  # paper writes ~19 for a 100-ish tree
        "cwlog": (cwlog.smallest_quorum_size(), cwlog.largest_quorum_size(), None),
        "h-t-grid": (
            htgrid.smallest_quorum_size(),
            htgrid.largest_quorum_size(),
            None,
        ),
        "paths": (PathsQuorumSystem(7).smallest_quorum_size(), None, None),
        "y": (YQuorumSystem(14).smallest_quorum_size(), None, None),
        "h-triang": (14, 14, triangle.load_exact()),
    }


PAPER = {
    15: {"majority": (8, 8, 0.533), "hqs": (6, 6, 0.40),
         "cwlog": (3, 6, 0.555), "h-t-grid": (4, 7, 0.41),
         "paths": (5, None, None), "y": (5, 6, 0.346),
         "h-triang": (5, 5, 1 / 3)},
    28: {"majority": (14, 14, 0.51), "hqs": (8, 8, 0.296),
         "cwlog": (4, 10, 0.437), "h-t-grid": (5, 9, 0.34),
         "paths": (7, None, None), "y": (7, 11, 0.289),
         "h-triang": (7, 7, 0.25)},
    100: {"majority": (51, 51, None), "hqs": (19, 19, None),
          "cwlog": (5, 25, None), "h-t-grid": (10, 19, None),
          "paths": (15, None, None), "y": (14, None, None),
          "h-triang": (14, 14, None)},
}


def _fmt(block):
    def cell(value):
        if value is None:
            return "-"
        if isinstance(value, float):
            return f"{value:.3f}"
        return value

    return {k: tuple(cell(v) for v in vals) for k, vals in block.items()}


@pytest.mark.benchmark(group="table4")
def test_table4(benchmark):
    def compute():
        return {15: compute_block15(), 28: compute_block28(), 100: compute_block100()}

    blocks = run_once(benchmark, compute)

    names = ["majority", "hqs", "cwlog", "h-t-grid", "paths", "y", "h-triang"]
    for scale, block in blocks.items():
        shown = _fmt(block)
        paper = _fmt(PAPER[scale])
        rows = [
            ["min"] + [shown[n][0] for n in names],
            ["  paper"] + [paper[n][0] for n in names],
            ["max"] + [shown[n][1] for n in names],
            ["  paper"] + [paper[n][1] for n in names],
            ["load"] + [shown[n][2] for n in names],
            ["  paper"] + [paper[n][2] for n in names],
        ]
        print()
        print(format_table(f"Table 4 block: ~{scale} nodes", ["-"] + names, rows, widths=11))

    # --- shape assertions -------------------------------------------------
    b15, b28, b100 = blocks[15], blocks[28], blocks[100]
    # h-triang: unique fixed quorum size, smallest max size, best load of
    # the high-availability systems.
    for block, t in ((b15, 5), (b28, 7), (b100, 14)):
        assert block["h-triang"][0] == block["h-triang"][1] == t
    assert b15["h-triang"][2] == pytest.approx(1 / 3)
    assert b28["h-triang"][2] == pytest.approx(0.25)
    for name in ("majority", "hqs", "cwlog", "h-t-grid", "y"):
        if b15[name][2] is not None:
            assert b15["h-triang"][2] < b15[name][2] + 1e-9
    # CWlog trade-off loads match §6 exactly.
    assert b15["cwlog"][2] == pytest.approx(5 / 9, abs=1e-9)
    assert b28["cwlog"][2] == pytest.approx(0.4375, abs=1e-9)
    # Size ranges match the paper exactly where defined.
    for scale, block in blocks.items():
        for name in ("cwlog", "h-triang"):
            assert block[name][0] == PAPER[scale][name][0]
            assert block[name][1] == PAPER[scale][name][1]
    assert b15["h-t-grid"][:2] == (4, 7)
    assert b15["y"][:2] == (5, 6)
    assert b15["paths"][0] == 5
    assert b28["paths"][0] == 7
    assert b100["paths"][0] == 15
