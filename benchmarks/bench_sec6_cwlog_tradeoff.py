"""§6's CWlog size/load trade-off numbers.

The paper quotes, for the [16] trade-off strategy: average quorum size 4
and load 55.5% at n=14; 5.25 and 43.7% at n=29.  Our reverse-engineered
strategy (uniform over the last ``floor(log2 n)`` wall rows) reproduces
all four numbers exactly; the benchmark also contrasts it with the
width-proportional strategy and the LP optimum, exhibiting the trade-off
frontier.
"""

import pytest

from repro.analysis import optimal_strategy
from repro.systems import CrumblingWallQuorumSystem

from _tables import format_table, run_once


def compute_tradeoff():
    out = {}
    for n in (14, 29):
        wall = CrumblingWallQuorumSystem.cwlog(n)
        tradeoff = wall.tradeoff_strategy()
        proportional = wall.proportional_row_strategy()
        lp = optimal_strategy(wall)
        out[n] = {
            "tradeoff": (tradeoff.average_quorum_size(), tradeoff.induced_load()),
            "proportional": (
                proportional.average_quorum_size(),
                proportional.induced_load(),
            ),
            "lp-optimal": (lp.average_quorum_size(), lp.induced_load()),
        }
    return out


PAPER = {14: (4.0, 0.555), 29: (5.25, 0.437)}


@pytest.mark.benchmark(group="section-6")
def test_cwlog_tradeoff(benchmark):
    table = run_once(benchmark, compute_tradeoff)

    rows = []
    for n, strategies in table.items():
        for name, (avg, load) in strategies.items():
            rows.append([f"cwlog({n}) {name}", avg, load])
        rows.append([f"  paper (tradeoff)", PAPER[n][0], PAPER[n][1]])
    print()
    print(
        format_table(
            "Section 6: CWlog quorum-size / load trade-off",
            ["strategy", "avg |Q|", "load"],
            rows,
            widths=16,
        )
    )

    for n in (14, 29):
        avg, load = table[n]["tradeoff"]
        assert avg == pytest.approx(PAPER[n][0], abs=1e-9)
        assert load == pytest.approx(PAPER[n][1], abs=1e-3)
        # The trade-off: smaller quorums than the load-optimal
        # strategies, at the price of a higher load.
        assert avg < table[n]["proportional"][0]
        assert load > table[n]["lp-optimal"][1]
    # The paper's point about CWlog load being O(1/lg n): it improves
    # with n but stays far above h-triang's sqrt(2)/sqrt(n).
    assert table[29]["tradeoff"][1] < table[14]["tradeoff"][1]
    assert table[29]["tradeoff"][1] > 0.25  # h-triang(28) load
