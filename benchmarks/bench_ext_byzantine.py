"""Extension (§7 outlook): Byzantine thresholds of the constructions.

The paper closes with "we believe that the ideas proposed in this paper
can also be adapted and used in Byzantine quorum systems".  This
extension benchmark quantifies one such adaptation: boosting the
hierarchical triangle into a b-masking system (every element becomes a
2b+1 replica group) and comparing quorum size and load against the
Malkhi–Reiter masking-majority baseline of the same universe size.
"""

import pytest

from repro.analysis import (
    boost,
    byzantine_profile,
    is_b_masking,
    masking_majority,
)
from repro.systems import HierarchicalTriangle, MajorityQuorumSystem, YQuorumSystem

from _tables import format_table, run_once


def compute_byzantine():
    out = {}
    # Crash-model constructions all sit at b = 0 (their design point).
    for system in (
        HierarchicalTriangle(5),
        MajorityQuorumSystem.of_size(15),
        YQuorumSystem(5),
    ):
        overlap, dissemination, masking = byzantine_profile(system)
        out[system.system_name] = {
            "n": system.n,
            "overlap": overlap,
            "masking_b": masking,
            "quorum": system.smallest_quorum_size(),
        }
    # The boosted triangle vs the masking majority at b = 1.
    boosted = boost(HierarchicalTriangle(3), 1)
    baseline = masking_majority(boosted.n, 1)
    for label, system in (("boosted h-triang", boosted), ("masking-majority", baseline)):
        overlap, dissemination, masking = byzantine_profile(system)
        out[label] = {
            "n": system.n,
            "overlap": overlap,
            "masking_b": masking,
            "quorum": system.smallest_quorum_size(),
        }
    return out


@pytest.mark.benchmark(group="extension")
def test_byzantine_extension(benchmark):
    table = run_once(benchmark, compute_byzantine)

    rows = [
        [name, entry["n"], entry["overlap"], entry["masking_b"], entry["quorum"]]
        for name, entry in table.items()
    ]
    print()
    print(
        format_table(
            "Extension: Byzantine thresholds (min overlap / masking b)",
            ["system", "n", "overlap", "masking b", "c(S)"],
            rows,
            widths=18,
        )
    )

    # Crash-model systems tolerate no Byzantine faults as-is.
    for name in ("h-triang5", "majority", "y5"):
        assert table[name]["masking_b"] == 0
    # The boosted triangle reaches b = 1 ...
    assert table["boosted h-triang"]["masking_b"] >= 1
    boosted = boost(HierarchicalTriangle(3), 1)
    assert is_b_masking(boosted, 1)
    # ... with smaller quorums than the masking majority over the same
    # universe (the hierarchical advantage carries over, as §7 hopes).
    assert table["boosted h-triang"]["quorum"] < table["masking-majority"]["quorum"]
