"""Asymptotic availability study (the claims behind Tables 2-3).

The paper's motivation rests on asymptotics: flat-grid availability
*degrades* as elements are added (Peleg–Wool), while the hierarchical
constructions drive the failure probability to 0.  The structural
recursions make these regimes directly computable far beyond the paper's
28 nodes — this benchmark traces them up to ~1000 elements and asserts
the trends.
"""

import pytest

from repro.systems import (
    CrumblingWallQuorumSystem,
    GridQuorumSystem,
    HierarchicalGrid,
    HierarchicalTriangle,
    MajorityQuorumSystem,
)

from _tables import format_table, run_once

P = 0.1
SIDES = (4, 8, 16, 32)  # grid sides -> n = 16 .. 1024
ROWS = (7, 14, 21, 28, 45)  # triangle rows -> n = 28 .. 1035


def compute_scaling():
    grids = {
        side * side: {
            "grid": GridQuorumSystem(side, side).failure_probability_exact(P),
            "h-grid": HierarchicalGrid.halving(side, side).failure_probability_exact(P),
        }
        for side in SIDES
    }
    triangles = {
        t * (t + 1) // 2: HierarchicalTriangle(t).failure_probability_exact(P)
        for t in ROWS
    }
    majority = {
        n: MajorityQuorumSystem.of_size(n).failure_probability_exact(P)
        for n in (15, 105, 1035)
    }
    cwlog = {
        n: CrumblingWallQuorumSystem.cwlog(n).failure_probability_exact(P)
        for n in (14, 99, 1000)
    }
    return grids, triangles, majority, cwlog


@pytest.mark.benchmark(group="scaling")
def test_scaling(benchmark):
    grids, triangles, majority, cwlog = run_once(benchmark, compute_scaling)

    rows = [
        [f"n={n}", values["grid"], values["h-grid"]] for n, values in grids.items()
    ]
    print()
    print(
        format_table(
            f"Scaling: flat grid vs h-grid (failure at p={P})",
            ["scale", "grid", "h-grid"],
            rows,
        )
    )
    rows = [[f"n={n}", value] for n, value in triangles.items()]
    print()
    print(
        format_table(
            f"Scaling: h-triang (failure at p={P})", ["scale", "h-triang"], rows
        )
    )
    rows = [[f"n={n}", value] for n, value in majority.items()]
    rows += [[f"cwlog n={n}", value] for n, value in cwlog.items()]
    print()
    print(
        format_table(
            f"Scaling: majority and CWlog (failure at p={P})",
            ["scale", "F_p"],
            rows,
        )
    )

    # Flat grid degrades with scale (monotone beyond the small-n dip) ...
    grid_values = [grids[side * side]["grid"] for side in SIDES]
    assert grid_values[1:] == sorted(grid_values[1:])
    assert grid_values[-1] > 20 * grid_values[0]
    # ... the hierarchical grid improves monotonically and crosses below
    # the flat grid from the start ...
    hgrid_values = [grids[side * side]["h-grid"] for side in SIDES]
    assert hgrid_values == sorted(hgrid_values, reverse=True)
    for side in SIDES:
        assert grids[side * side]["h-grid"] < grids[side * side]["grid"]
    # ... and at 1024 elements the gap is enormous (asymptotic regimes).
    assert grids[1024]["grid"] > 0.3
    assert grids[1024]["h-grid"] < 1e-10
    assert grids[1024]["grid"] / grids[1024]["h-grid"] > 1e10
    # h-triang's failure probability vanishes too (F -> 0, §5).
    tri_values = list(triangles.values())
    for before, after in zip(tri_values, tri_values[1:]):
        assert after <= before + 1e-15  # decreasing, up to the float floor
    assert tri_values[-1] < 1e-12
    # Majority converges to 0 fastest (it is the Prop. 3.2 optimum) and
    # CWlog sits between majority and the sqrt(n)-quorum systems.
    assert majority[1035] < triangles[1035] or majority[1035] < 1e-15
    assert cwlog[1000] < 1e-5
