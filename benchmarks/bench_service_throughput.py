"""Serving-layer perf-regression harness.

Drives ``run_kv_benchmark`` across the paper's system families
(majority, hierarchical grid, hierarchical T-grid, hierarchical
triangle) and across transports:

* ``inprocess``          — deterministic virtual-latency transport;
* ``inprocess_faults``   — same, with iid crash injection;
* ``inprocess_hedged``   — same, with one hedge spare per quorum phase;
* ``tcp_pipelined``      — localhost TCP, correlation-id multiplexed;
* ``tcp_hedged``         — pipelined TCP plus one hedge spare;
* ``tcp_serialized``     — localhost TCP over the preserved
  lock-per-replica baseline client (the pre-overhaul hot path).

plus the sharding layer: ``shard_scaling`` runs the same seeded zipf
workload through ``repro.sharding`` at 1 and 8 shards under virtual
time with finite-capacity replicas, and records the speedup (gated at
>= 2x — the whole point of partitioning the namespace).

Writes ``BENCH_service.json`` (ops/s, latency percentiles, bytes on the
wire, hedge statistics, the pipelined-vs-serialized speedup per system,
and the shard-scaling block) and exits non-zero if any fault-free
scenario dropped an operation — timings are reported, correctness is
gated.

Run from the repo root::

    PYTHONPATH=src python benchmarks/bench_service_throughput.py \
        [--out BENCH_service.json] [--ops 1200] [--quick]
"""

from __future__ import annotations

import argparse
import json
import sys
from typing import Any, Dict

from repro.cli import build_system
from repro.service import BenchmarkReport, run_kv_benchmark
from repro.sharding import compare_shard_scaling

SEED = 42
CLIENTS = 8

SYSTEMS = ("majority:5", "hgrid:4x4", "htgrid:4x4", "htriang:15")

#: scenario name -> run_kv_benchmark keyword overrides
SCENARIOS: Dict[str, Dict[str, Any]] = {
    "inprocess": {},
    "inprocess_faults": {"crash_rate": 0.1},
    "inprocess_hedged": {"hedge_spares": 1},
    "tcp_pipelined": {"tcp_local": True},
    # Dean-style deferred hedging: one spare, fired only when a quorum
    # phase is still incomplete well past the fault-free p99 (~1.5ms) —
    # on a healthy localhost run the fast path issues ~no spares, so
    # hedging must cost ~nothing; hedge *wins* show up under faults.
    "tcp_hedged": {"tcp_local": True, "hedge_spares": 1, "hedge_delay_ms": 20.0},
    "tcp_serialized": {"tcp_local": True, "serialized": True},
}

#: scenarios where every operation must succeed (no faults injected)
FAULT_FREE = tuple(name for name in SCENARIOS if "faults" not in name)


def summarize(report: BenchmarkReport) -> Dict[str, Any]:
    """The regression-relevant slice of one benchmark run."""
    snapshot = report.to_dict()
    return {
        "ops_per_second": round(report.ops_per_second, 1),
        "elapsed_seconds": round(report.elapsed_seconds, 4),
        "ops": {
            "attempted": snapshot["ops"]["attempted"],
            "succeeded": snapshot["ops"]["succeeded"],
            "failed": snapshot["ops"]["failed"],
        },
        "latency_ms": {
            "p50": round(snapshot["latency_ms"]["p50"], 3),
            "p95": round(snapshot["latency_ms"]["p95"], 3),
            "p99": round(snapshot["latency_ms"]["p99"], 3),
        },
        "hedging": snapshot["hedging"],
        "transport": report.transport_stats,
    }


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--out", default="BENCH_service.json")
    parser.add_argument("--ops", type=int, default=1200)
    parser.add_argument("--seed", type=int, default=SEED)
    parser.add_argument(
        "--quick",
        action="store_true",
        help="smaller run for CI smoke (fewer ops, majority+htriang only)",
    )
    args = parser.parse_args()

    ops = 300 if args.quick else args.ops
    systems = ("majority:5", "htriang:15") if args.quick else SYSTEMS

    results: Dict[str, Any] = {
        "seed": args.seed,
        "ops": ops,
        "clients": CLIENTS,
        "systems": {},
    }
    failures = []
    for spec in systems:
        system = build_system(spec)
        per_system: Dict[str, Any] = {}
        for scenario, overrides in SCENARIOS.items():
            report = run_kv_benchmark(
                system,
                seed=args.seed,
                ops=ops,
                clients=CLIENTS,
                **overrides,
            )
            summary = summarize(report)
            per_system[scenario] = summary
            failed = summary["ops"]["failed"]
            if scenario in FAULT_FREE and failed:
                failures.append(f"{spec}/{scenario}: {failed} failed ops")
            print(
                f"{spec:>12} {scenario:<18}"
                f" {summary['ops_per_second']:>9.1f} ops/s"
                f"  p99={summary['latency_ms']['p99']:.2f}ms"
                f"  failed={failed}"
            )
        pipelined = per_system["tcp_pipelined"]["ops_per_second"]
        hedged = per_system["tcp_hedged"]["ops_per_second"]
        serialized = per_system["tcp_serialized"]["ops_per_second"]
        per_system["tcp_speedup"] = {
            "pipelined_vs_serialized": round(pipelined / serialized, 2),
            "hedged_vs_serialized": round(hedged / serialized, 2),
        }
        print(
            f"{spec:>12} speedup: pipelined {pipelined / serialized:.2f}x,"
            f" hedged {hedged / serialized:.2f}x over serialized baseline"
        )
        results["systems"][spec] = per_system

    # Shard scaling: same seeded zipf workload, 1 vs 8 shards, virtual
    # time, finite-capacity replicas.  Deterministic per seed.
    scaling = compare_shard_scaling(
        build_system,
        spec="majority:5",
        shard_counts=(1, 8),
        seed=args.seed,
        ops=300 if args.quick else 2000,
        keys=512,
        skew=0.9,
        clients=16,
    )
    runs = scaling["runs"]
    results["shard_scaling"] = {
        "spec": scaling["spec"],
        "seed": scaling["seed"],
        "speedup_8x_vs_1x": round(scaling["speedup"], 2),
        "runs": {
            count: {
                "succeeded": run["succeeded"],
                "failed": run["failed"],
                "virtual_ms": round(run["virtual_ms"], 1),
                "ops_per_virtual_second": round(run["ops_per_virtual_second"], 1),
                "key_skew": run["key_skew"],
            }
            for count, run in runs.items()
        },
    }
    for count in sorted(runs, key=int):
        run = runs[count]
        print(
            f"{'majority:5':>12} shards={count:<13}"
            f" {run['ops_per_virtual_second']:>9.1f} ops/vs"
            f"  virtual={run['virtual_ms']:.1f}ms"
            f"  failed={run['failed']}"
        )
        if run["failed"]:
            failures.append(f"shard_scaling/{count}: {run['failed']} failed ops")
    print(
        f"{'majority:5':>12} shard scaling: 8 shards"
        f" {scaling['speedup']:.2f}x over 1 shard"
    )
    if scaling["speedup"] < 2.0:
        failures.append(
            f"shard_scaling: speedup {scaling['speedup']:.2f}x < 2x floor"
        )

    with open(args.out, "w", encoding="utf-8") as handle:
        json.dump(results, handle, indent=2, sort_keys=True)
        handle.write("\n")
    print(f"wrote {args.out}")

    if failures:
        print("FAILED OPS in fault-free scenarios:", file=sys.stderr)
        for line in failures:
            print(f"  {line}", file=sys.stderr)
        return 1
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
