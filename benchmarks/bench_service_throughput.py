"""Serving-layer perf-regression harness.

Drives ``run_kv_benchmark`` across the paper's system families
(majority, hierarchical grid, hierarchical T-grid, hierarchical
triangle) and across transports:

* ``inprocess``          — deterministic virtual-latency transport;
* ``inprocess_faults``   — same, with iid crash injection;
* ``inprocess_hedged``   — same, with one hedge spare per quorum phase;
* ``tcp_pipelined``      — localhost TCP, JSON lines, correlation-id
  multiplexed;
* ``tcp_hedged``         — pipelined TCP plus one hedge spare;
* ``tcp_serialized``     — localhost TCP over the preserved
  lock-per-replica baseline client (the pre-overhaul hot path);
* ``tcp_binary``         — localhost TCP over the struct-packed,
  op-coalescing binary wire protocol v2.

plus two scaling studies:

* the **wire matrix** — protocol (pipelined JSON, binary, binary
  without coalescing) × server core count (``workers`` = 0 in-loop,
  1, 2 OS processes) under a transport-level closed-loop quorum-read
  fan-out at 8 clients.  This isolates the wire from the coordinator:
  end-to-end ops/s blends strategy sampling, quorum bookkeeping and
  event-loop scheduling with the protocol cost, so the matrix is where
  the codec's speedup is visible undiluted.  Two gates ride on it:
  binary+coalesced must be >= 2x pipelined JSON at workers=0 on at
  least one system family, and binary at workers=2 must beat
  workers=1 (recorded, and gated only outside ``--quick`` — CI
  runners' core counts are not trustworthy);
* ``shard_scaling`` runs the same seeded zipf workload through
  ``repro.sharding`` at 1 and 8 shards under virtual time with
  finite-capacity replicas, and records the speedup (gated at >= 2x —
  the whole point of partitioning the namespace);
* the **read/write capacity matrix** — read fraction (0.5, 0.9, 0.99)
  × family (grid, h-grid, h-T-grid, h-triangle) under virtual time
  with finite-capacity FIFO replicas, each cell served once by the
  unified write-legal LP optimum and once by the read/write capacity
  LP's split strategy pair.  Two hard gates (deterministic — virtual
  time, so they hold in ``--quick`` too): the split path at read
  fraction >= 0.9 must be >= 1.3x the unified baseline on at least two
  families, and every observed split throughput must land within 25%
  of its LP-predicted capacity.  (The hierarchical triangle is
  honestly ~1.0x: it is self-dual, so its read quorums are no smaller
  than its write quorums — recorded, not gated.)

Writes ``BENCH_service.json`` (ops/s, latency percentiles, bytes on
the wire, ops-per-frame coalescing ratios, hedge statistics, the
per-system speedup table, the wire matrix and the shard-scaling
block).  Exits non-zero if any fault-free scenario dropped an
operation, if binary end-to-end falls below pipelined JSON, or if a
wire-matrix gate fails — correctness and protocol-ordering are gated;
absolute timings are only recorded.

Run from the repo root::

    PYTHONPATH=src python benchmarks/bench_service_throughput.py \
        [--out BENCH_service.json] [--ops 1200] [--quick]
"""

from __future__ import annotations

import argparse
import asyncio
import itertools
import json
import sys
import time
from typing import Any, Dict, List, Tuple

from repro.cli import build_system
from repro.service import (
    BenchmarkReport,
    BinaryTcpTransport,
    ReplicaCluster,
    TcpTransport,
    make_replicas,
    run_kv_benchmark,
    start_tcp_replicas,
    transport_summary,
)
from repro.sharding import compare_shard_scaling

SEED = 42
CLIENTS = 8

SYSTEMS = ("majority:5", "hgrid:4x4", "htgrid:4x4", "htriang:15")

#: scenario name -> run_kv_benchmark keyword overrides
SCENARIOS: Dict[str, Dict[str, Any]] = {
    "inprocess": {},
    "inprocess_faults": {"crash_rate": 0.1},
    "inprocess_hedged": {"hedge_spares": 1},
    "tcp_pipelined": {"tcp_local": True},
    # Dean-style deferred hedging: one spare, fired only when a quorum
    # phase is still incomplete well past the fault-free p99 (~1.5ms) —
    # on a healthy localhost run the fast path issues ~no spares, so
    # hedging must cost ~nothing; hedge *wins* show up under faults.
    "tcp_hedged": {"tcp_local": True, "hedge_spares": 1, "hedge_delay_ms": 20.0},
    "tcp_serialized": {"tcp_local": True, "serialized": True},
    "tcp_binary": {"tcp_local": True, "binary": True},
}

#: scenarios where every operation must succeed (no faults injected)
FAULT_FREE = tuple(name for name in SCENARIOS if "faults" not in name)

#: wire-matrix axes: systems kept to two families to bound runtime,
#: protocol x server core count.
WIRE_SYSTEMS = ("majority:5", "htriang:15")
WIRE_PROTOCOLS = ("json", "binary", "binary_nocoalesce")
WIRE_WORKERS = (0, 1, 2)

#: read/write capacity-matrix axes and gates
RW_SYSTEMS = ("grid:4x4", "hgrid:4x4", "htgrid:4x4", "htriang:15")
RW_FRACTIONS = (0.5, 0.9, 0.99)
RW_SPEEDUP_FLOOR = 1.3  # split vs unified at read fraction >= 0.9
RW_SPEEDUP_FAMILIES = 2  # ... on at least this many families
RW_TOLERANCE = 0.25  # |observed/predicted - 1| ceiling for split runs


def summarize(report: BenchmarkReport) -> Dict[str, Any]:
    """The regression-relevant slice of one benchmark run."""
    snapshot = report.to_dict()
    return {
        "ops_per_second": round(report.ops_per_second, 1),
        "elapsed_seconds": round(report.elapsed_seconds, 4),
        "ops": {
            "attempted": snapshot["ops"]["attempted"],
            "succeeded": snapshot["ops"]["succeeded"],
            "failed": snapshot["ops"]["failed"],
        },
        "latency_ms": {
            "p50": round(snapshot["latency_ms"]["p50"], 3),
            "p95": round(snapshot["latency_ms"]["p95"], 3),
            "p99": round(snapshot["latency_ms"]["p99"], 3),
        },
        "hedging": snapshot["hedging"],
        "transport": report.transport_stats,
    }


# ----------------------------------------------------------------------
# Wire matrix: transport-level quorum fan-out, no coordinator
# ----------------------------------------------------------------------
def _wire_cell(
    spec: str, protocol: str, workers: int, ops: int, clients: int
) -> Dict[str, Any]:
    """One matrix cell: closed-loop quorum-shaped reads, 8 clients.

    Every logical op fans one read out to each member of a minimal
    quorum (rotating through the first 8 quorums), awaits the full
    quorum, repeats.  ``workers=0`` serves replicas on the benchmark's
    own loop; ``workers>=1`` hosts them in that many OS processes.
    """
    system = build_system(spec)
    quorums = [
        tuple(sorted(q)) for q in itertools.islice(system.minimal_quorums(), 8)
    ]
    cluster = None
    if workers:
        cluster = ReplicaCluster(list(system.universe.ids), workers=workers)
        cluster.start()

    async def run() -> Tuple[int, float, Dict[str, Any]]:
        servers: List[asyncio.AbstractServer] = []
        if cluster is not None:
            addresses = cluster.addresses
        else:
            servers, addresses = await start_tcp_replicas(make_replicas(system))
        if protocol == "json":
            transport = TcpTransport(addresses)
        elif protocol == "binary":
            transport = BinaryTcpTransport(addresses)
        elif protocol == "binary_nocoalesce":
            transport = BinaryTcpTransport(addresses, coalesce=False)
        else:
            raise ValueError(f"unknown protocol {protocol!r}")
        submit = getattr(transport, "submit", None)
        request = {"op": "read", "key": "k"}
        done = 0

        async def client(cid: int) -> None:
            nonlocal done
            i = 0
            while done < ops:
                done += 1
                quorum = quorums[(cid + i) % len(quorums)]
                if submit is not None:
                    calls = [submit(rid, request) for rid in quorum]
                else:
                    calls = [
                        asyncio.ensure_future(transport.call(rid, request))
                        for rid in quorum
                    ]
                await asyncio.gather(*calls)
                i += 1

        started = time.perf_counter()
        await asyncio.gather(*(client(c) for c in range(clients)))
        elapsed = time.perf_counter() - started
        stats = transport_summary(transport)
        await transport.close()
        for server in servers:
            server.close()
        for server in servers:
            await server.wait_closed()
        return done, elapsed, stats

    try:
        done, elapsed, stats = asyncio.run(run())
    finally:
        if cluster is not None:
            cluster.close()
    cell = {
        "ops_per_second": round(done / elapsed, 1),
        "rpcs_per_second": round(stats.get("calls", 0) / elapsed, 1),
        "elapsed_seconds": round(elapsed, 4),
    }
    for ratio in ("ops_per_frame", "bytes_per_op"):
        if ratio in stats:
            cell[ratio] = round(stats[ratio], 2)
    return cell


def run_wire_matrix(
    systems, ops: int, clients: int
) -> Tuple[Dict[str, Any], List[str], List[str]]:
    """The full protocol x core-count sweep plus its two gates."""
    matrix: Dict[str, Any] = {
        "workload": "closed-loop quorum reads",
        "ops": ops,
        "clients": clients,
        "systems": {},
    }
    hard_failures: List[str] = []
    notes: List[str] = []
    for spec in systems:
        per_spec: Dict[str, Any] = {}
        for protocol in WIRE_PROTOCOLS:
            per_worker: Dict[str, Any] = {}
            for workers in WIRE_WORKERS:
                cell = _wire_cell(spec, protocol, workers, ops, clients)
                per_worker[str(workers)] = cell
                opf = cell.get("ops_per_frame")
                print(
                    f"{spec:>12} wire {protocol:<18} workers={workers}"
                    f" {cell['ops_per_second']:>9.1f} ops/s"
                    f" {cell['rpcs_per_second']:>9.1f} rpc/s"
                    + (f"  {opf:.2f} ops/frame" if opf is not None else "")
                )
            per_spec[protocol] = per_worker
        binary0 = per_spec["binary"]["0"]["ops_per_second"]
        json0 = per_spec["json"]["0"]["ops_per_second"]
        per_spec["binary_vs_json_inloop"] = round(binary0 / json0, 2)
        w1 = per_spec["binary"]["1"]["ops_per_second"]
        w2 = per_spec["binary"]["2"]["ops_per_second"]
        per_spec["binary_workers2_vs_1"] = round(w2 / w1, 2)
        print(
            f"{spec:>12} wire: binary {binary0 / json0:.2f}x pipelined json"
            f" (in-loop); binary workers=2 {w2 / w1:.2f}x workers=1"
        )
        matrix["systems"][spec] = per_spec

    best_ratio = max(
        per["binary_vs_json_inloop"] for per in matrix["systems"].values()
    )
    matrix["gates"] = {
        "binary_2x_json": best_ratio >= 2.0,
        "best_binary_vs_json": best_ratio,
        "workers2_beats_workers1": any(
            per["binary_workers2_vs_1"] > 1.0 for per in matrix["systems"].values()
        ),
    }
    if best_ratio < 2.0:
        hard_failures.append(
            f"wire_matrix: best binary-vs-json ratio {best_ratio:.2f}x < 2x floor"
        )
    if not matrix["gates"]["workers2_beats_workers1"]:
        notes.append(
            "wire_matrix: binary workers=2 did not beat workers=1 on any"
            " family (core-starved host?)"
        )
    return matrix, hard_failures, notes


# ----------------------------------------------------------------------
# Read/write capacity matrix: split strategy pair vs unified optimum
# ----------------------------------------------------------------------
def run_capacity_matrix(
    systems, fractions, seed: int, ops: int
) -> Tuple[Dict[str, Any], List[str], List[str]]:
    """Virtual-time saturation throughput, split vs unified, plus gates.

    Every cell is deterministic per seed (virtual clock, seeded
    latencies), so both gates are hard even on shared CI runners.
    """
    from repro.service import run_capacity_benchmark

    matrix: Dict[str, Any] = {
        "workload": "closed-loop zipf KV ops, finite-capacity FIFO replicas",
        "ops": ops,
        "seed": seed,
        "fractions": list(fractions),
        "speedup_floor": RW_SPEEDUP_FLOOR,
        "tolerance": RW_TOLERANCE,
        "systems": {},
    }
    hard_failures: List[str] = []
    notes: List[str] = []
    families_passing = []
    for spec in systems:
        system = build_system(spec)
        per_spec: Dict[str, Any] = {}
        best_high_fraction_speedup = 0.0
        for fraction in fractions:
            unified = run_capacity_benchmark(
                system, read_write=False, read_fraction=fraction,
                seed=seed, ops=ops,
            )
            split = run_capacity_benchmark(
                system, read_write=True, read_fraction=fraction,
                seed=seed, ops=ops,
            )
            speedup = (
                split["observed_ops_per_sec"] / unified["observed_ops_per_sec"]
                if unified["observed_ops_per_sec"] > 0
                else 0.0
            )
            cell = {
                "unified": {
                    "observed_ops_per_sec": round(
                        unified["observed_ops_per_sec"], 1
                    ),
                    "predicted_ops_per_sec": round(
                        unified["predicted_ops_per_sec"], 1
                    ),
                    "observed_over_predicted": round(
                        unified["observed_over_predicted"], 3
                    ),
                    "failed": unified["ops_failed"],
                },
                "read_write": {
                    "observed_ops_per_sec": round(
                        split["observed_ops_per_sec"], 1
                    ),
                    "predicted_ops_per_sec": round(
                        split["predicted_ops_per_sec"], 1
                    ),
                    "observed_over_predicted": round(
                        split["observed_over_predicted"], 3
                    ),
                    "lp_load": round(split["lp_load"], 4),
                    "failed": split["ops_failed"],
                },
                "split_vs_unified": round(speedup, 2),
            }
            per_spec[f"{fraction:g}"] = cell
            print(
                f"{spec:>12} rw fraction={fraction:<5g}"
                f" split {split['observed_ops_per_sec']:>7.1f} ops/vs"
                f" (pred {split['predicted_ops_per_sec']:.1f})"
                f"  unified {unified['observed_ops_per_sec']:>7.1f}"
                f"  speedup {speedup:.2f}x"
            )
            ratio = split["observed_over_predicted"]
            if abs(ratio - 1.0) > RW_TOLERANCE:
                hard_failures.append(
                    f"capacity_matrix {spec}@{fraction:g}: observed/predicted"
                    f" {ratio:.3f} outside 1±{RW_TOLERANCE:g}"
                )
            if split["ops_failed"] or unified["ops_failed"]:
                hard_failures.append(
                    f"capacity_matrix {spec}@{fraction:g}: dropped ops"
                    f" (split {split['ops_failed']},"
                    f" unified {unified['ops_failed']})"
                )
            if fraction >= 0.9:
                best_high_fraction_speedup = max(
                    best_high_fraction_speedup, speedup
                )
        per_spec["best_speedup_at_0.9plus"] = round(
            best_high_fraction_speedup, 2
        )
        if best_high_fraction_speedup >= RW_SPEEDUP_FLOOR:
            families_passing.append(spec)
        matrix["systems"][spec] = per_spec
    matrix["gates"] = {
        "families_above_floor": families_passing,
        "speedup_gate": len(families_passing) >= RW_SPEEDUP_FAMILIES,
    }
    if len(families_passing) < RW_SPEEDUP_FAMILIES:
        hard_failures.append(
            f"capacity_matrix: only {families_passing} reached"
            f" {RW_SPEEDUP_FLOOR:g}x over unified at read fraction >= 0.9"
            f" (need {RW_SPEEDUP_FAMILIES} families)"
        )
    else:
        print(
            f"{'':>12} rw gate: {len(families_passing)} families >="
            f" {RW_SPEEDUP_FLOOR:g}x at 0.9+ ({', '.join(families_passing)})"
        )
    return matrix, hard_failures, notes


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--out", default="BENCH_service.json")
    parser.add_argument("--ops", type=int, default=1200)
    parser.add_argument("--seed", type=int, default=SEED)
    parser.add_argument(
        "--quick",
        action="store_true",
        help="smaller run for CI smoke (fewer ops, majority+htriang only;"
        " the worker-scaling gate becomes advisory)",
    )
    args = parser.parse_args()

    ops = 300 if args.quick else args.ops
    systems = ("majority:5", "htriang:15") if args.quick else SYSTEMS

    results: Dict[str, Any] = {
        "seed": args.seed,
        "ops": ops,
        "clients": CLIENTS,
        "systems": {},
    }
    failures = []
    warnings = []
    for spec in systems:
        system = build_system(spec)
        per_system: Dict[str, Any] = {}
        for scenario, overrides in SCENARIOS.items():
            report = run_kv_benchmark(
                system,
                seed=args.seed,
                ops=ops,
                clients=CLIENTS,
                **overrides,
            )
            summary = summarize(report)
            per_system[scenario] = summary
            failed = summary["ops"]["failed"]
            if scenario in FAULT_FREE and failed:
                failures.append(f"{spec}/{scenario}: {failed} failed ops")
            print(
                f"{spec:>12} {scenario:<18}"
                f" {summary['ops_per_second']:>9.1f} ops/s"
                f"  p99={summary['latency_ms']['p99']:.2f}ms"
                f"  failed={failed}"
            )
        pipelined = per_system["tcp_pipelined"]["ops_per_second"]
        hedged = per_system["tcp_hedged"]["ops_per_second"]
        serialized = per_system["tcp_serialized"]["ops_per_second"]
        binary = per_system["tcp_binary"]["ops_per_second"]
        per_system["tcp_speedup"] = {
            "pipelined_vs_serialized": round(pipelined / serialized, 2),
            "hedged_vs_serialized": round(hedged / serialized, 2),
            "binary_vs_serialized": round(binary / serialized, 2),
            "binary_vs_pipelined": round(binary / pipelined, 2),
        }
        print(
            f"{spec:>12} speedup: pipelined {pipelined / serialized:.2f}x,"
            f" binary {binary / serialized:.2f}x over serialized;"
            f" binary {binary / pipelined:.2f}x over pipelined"
        )
        # Gate (satellite): the binary protocol must never lose to the
        # JSON client it replaces on the identical end-to-end workload.
        if binary < pipelined:
            failures.append(
                f"{spec}: binary e2e {binary:.1f} ops/s <"
                f" pipelined json {pipelined:.1f} ops/s"
            )
        results["systems"][spec] = per_system

    # Protocol x core-count matrix at the transport level.
    wire_ops = 600 if args.quick else 4000
    wire_matrix, wire_failures, wire_notes = run_wire_matrix(
        ("majority:5",) if args.quick else WIRE_SYSTEMS, wire_ops, CLIENTS
    )
    results["wire_matrix"] = wire_matrix
    if args.quick:
        # CI smoke: record the matrix, keep only the fault/ordering
        # gates — absolute ratios on shared runners are advisory.
        warnings.extend(wire_failures + wire_notes)
    else:
        failures.extend(wire_failures)
        warnings.extend(wire_notes)
        if not wire_matrix["gates"]["workers2_beats_workers1"]:
            failures.append(
                "wire_matrix: binary workers=2 never beat workers=1"
            )

    # Shard scaling: same seeded zipf workload, 1 vs 8 shards, virtual
    # time, finite-capacity replicas.  Deterministic per seed.
    scaling = compare_shard_scaling(
        build_system,
        spec="majority:5",
        shard_counts=(1, 8),
        seed=args.seed,
        ops=300 if args.quick else 2000,
        keys=512,
        skew=0.9,
        clients=16,
    )
    runs = scaling["runs"]
    results["shard_scaling"] = {
        "spec": scaling["spec"],
        "seed": scaling["seed"],
        "speedup_8x_vs_1x": round(scaling["speedup"], 2),
        "runs": {
            count: {
                "succeeded": run["succeeded"],
                "failed": run["failed"],
                "virtual_ms": round(run["virtual_ms"], 1),
                "ops_per_virtual_second": round(run["ops_per_virtual_second"], 1),
                "key_skew": run["key_skew"],
            }
            for count, run in runs.items()
        },
    }
    for count in sorted(runs, key=int):
        run = runs[count]
        print(
            f"{'majority:5':>12} shards={count:<13}"
            f" {run['ops_per_virtual_second']:>9.1f} ops/vs"
            f"  virtual={run['virtual_ms']:.1f}ms"
            f"  failed={run['failed']}"
        )
        if run["failed"]:
            failures.append(f"shard_scaling/{count}: {run['failed']} failed ops")
    print(
        f"{'majority:5':>12} shard scaling: 8 shards"
        f" {scaling['speedup']:.2f}x over 1 shard"
    )
    if scaling["speedup"] < 2.0:
        failures.append(
            f"shard_scaling: speedup {scaling['speedup']:.2f}x < 2x floor"
        )

    # Read/write capacity matrix: deterministic virtual-time gates, so
    # they stay hard in --quick (only the op count shrinks).
    capacity_matrix, capacity_failures, capacity_notes = run_capacity_matrix(
        RW_SYSTEMS, RW_FRACTIONS, args.seed, 400 if args.quick else 600
    )
    results["capacity_matrix"] = capacity_matrix
    failures.extend(capacity_failures)
    warnings.extend(capacity_notes)

    with open(args.out, "w", encoding="utf-8") as handle:
        json.dump(results, handle, indent=2, sort_keys=True)
        handle.write("\n")
    print(f"wrote {args.out}")

    for line in warnings:
        print(f"WARNING: {line}", file=sys.stderr)
    if failures:
        print("GATE FAILURES:", file=sys.stderr)
        for line in failures:
            print(f"  {line}", file=sys.stderr)
        return 1
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
